// Tuning-file emission — the deployment path the paper describes (§II):
// once the job allocation (n, ppn) is known, the model is queried for a
// set of message sizes and the answers are written to a configuration
// file that the MPI library loads at application start (the analogue of
// an Open MPI coll_tuned dynamic rules file / an Intel MPI autotuner
// dump).
#pragma once

#include <cstdint>
#include <filesystem>
#include <map>
#include <string>
#include <vector>

#include "simmpi/coll/registry.hpp"
#include "tune/selector.hpp"

namespace mpicp::tune {

/// One emitted rule: for messages up to `msize_upto` use `uid`.
struct TuningRule {
  std::uint64_t msize_upto = 0;
  int uid = 0;
};

struct TuningConfig {
  sim::MpiLib lib = sim::MpiLib::kOpenMPI;
  sim::Collective coll = sim::Collective::kBcast;
  int nodes = 0;
  int ppn = 0;
  std::vector<TuningRule> rules;  ///< ascending msize_upto; last is "inf"

  /// The uid this configuration selects for a message size.
  int uid_for(std::uint64_t msize) const;
};

/// Query the selector on a ladder of message sizes (the paper: 10-15
/// sizes suffice) and fold adjacent identical picks into range rules.
TuningConfig build_tuning_config(const Selector& selector, sim::MpiLib lib,
                                 sim::Collective coll, int nodes, int ppn,
                                 const std::vector<std::uint64_t>& msizes);

void write_tuning_file(const std::filesystem::path& path,
                       const TuningConfig& config);
TuningConfig read_tuning_file(const std::filesystem::path& path);

}  // namespace mpicp::tune
