// The allow(layer-dag) escape hatch silences a justified upward edge.

// mpicp-lint: allow(layer-dag)
#include "tune/top.hpp"

namespace mpicp::ml {

int probe_depth(const tune::TopThing& thing) {
  return thing.base.value + 1;
}

}  // namespace mpicp::ml
