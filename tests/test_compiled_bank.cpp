// Equivalence and serving tests for the compiled model bank
// (tune/compiled_bank.hpp): the lowered SoA form must reproduce the
// interpreted Selector bit for bit — for every learner, at every thread
// count, under fault injection — while adding batched selection, a
// memoized cache and a save/load round trip of its own.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <filesystem>
#include <vector>

#include "collbench/dataset.hpp"
#include "support/faultinject.hpp"
#include "support/metrics.hpp"
#include "support/parallel.hpp"
#include "support/rng.hpp"
#include "tune/compiled_bank.hpp"
#include "tune/selector.hpp"

namespace mpicp {
namespace {

namespace fi = support::faultinject;
namespace metrics = support::metrics;

/// Seeded synthetic dataset: 3-6 algorithms with distinct random cost
/// models over a random grid (same recipe as the property suite; every
/// draw is fully determined by the seed).
bench::Dataset random_dataset(std::uint64_t seed) {
  support::Xoshiro256 rng(seed);
  bench::Dataset ds("compiled", sim::MpiLib::kOpenMPI,
                    sim::Collective::kBcast, "Hydra");
  const int num_uids = 3 + static_cast<int>(rng.uniform_int(4));
  const std::vector<int> nodes = {2, 4, 8, 16};
  const std::vector<int> ppns = {1, 1 + static_cast<int>(rng.uniform_int(8))};
  const std::vector<std::uint64_t> msizes = {
      std::uint64_t{1} << rng.uniform_int(8),
      std::uint64_t{1} << (8 + rng.uniform_int(8)),
      std::uint64_t{1} << (16 + rng.uniform_int(6))};
  for (int uid = 1; uid <= num_uids; ++uid) {
    const double a = rng.uniform(1.0, 50.0);
    const double b = rng.uniform(0.0, 5.0);
    const double c = rng.uniform(1e-4, 1e-2);
    for (const int n : nodes) {
      for (const int ppn : ppns) {
        for (const std::uint64_t m : msizes) {
          const double p = static_cast<double>(n) * ppn;
          const double t = a * std::log2(p + 1) + b * p +
                           c * static_cast<double>(m) + 1.0;
          for (int rep = 0; rep < 3; ++rep) {
            ds.add({uid, n, ppn, m, rng.lognormal_median(t, 0.08)});
          }
        }
      }
    }
  }
  return ds;
}

std::vector<bench::Instance> random_instances(std::uint64_t seed,
                                              int count) {
  support::Xoshiro256 rng(seed);
  std::vector<bench::Instance> out;
  out.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    out.push_back({1 + static_cast<int>(rng.uniform_int(64)),
                   1 + static_cast<int>(rng.uniform_int(16)),
                   std::uint64_t{1} << rng.uniform_int(22)});
  }
  return out;
}

constexpr const char* kAllLearners[] = {"xgboost", "rf",     "knn",
                                        "gam",     "linear", "median"};

/// Exact (bit-level) equality of interpreted vs compiled predictions on
/// one instance. EXPECT_EQ on doubles is deliberate: the compiled bank
/// promises the same arithmetic, not merely close arithmetic.
void expect_identical(const tune::Selector& selector,
                      const tune::CompiledBank& bank,
                      const bench::Instance& inst) {
  const auto interpreted = selector.predict_all(inst);
  const auto compiled = bank.predict_all(inst);
  ASSERT_EQ(interpreted.size(), compiled.size());
  for (std::size_t i = 0; i < interpreted.size(); ++i) {
    EXPECT_EQ(interpreted[i].uid, compiled[i].uid);
    EXPECT_EQ(interpreted[i].usable, compiled[i].usable);
    EXPECT_EQ(interpreted[i].time_us, compiled[i].time_us)
        << "uid " << interpreted[i].uid << " at m=" << inst.msize
        << " n=" << inst.nodes << " ppn=" << inst.ppn;
  }
}

// ---- bit-identity across learners, seeds and thread counts ---------------

class CompiledEquivalence
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CompiledEquivalence, EveryLearnerBitIdenticalAtEveryThreadCount) {
  const std::uint64_t seed = GetParam();
  const bench::Dataset ds = random_dataset(seed);
  const auto instances = random_instances(seed ^ 0xabcdef, 24);
  for (const char* learner : kAllLearners) {
    tune::Selector selector(tune::SelectorOptions{.learner = learner});
    ASSERT_GT(selector.fit(ds, ds.node_counts()).uids_total(), 0u)
        << learner;
    const tune::CompiledBank bank = selector.compile();
    ASSERT_EQ(bank.uids(), selector.uids()) << learner;
    for (const int threads : {1, 4}) {
      support::ScopedThreads scoped(threads);
      for (const bench::Instance& inst : instances) {
        expect_identical(selector, bank, inst);
        EXPECT_EQ(selector.select_uid(inst), bank.select_uid(inst))
            << learner << " @" << threads << " threads";
      }
      // The batched grid path agrees with per-instance selection.
      const std::vector<int> picked = bank.select_grid(instances);
      ASSERT_EQ(picked.size(), instances.size());
      for (std::size_t i = 0; i < instances.size(); ++i) {
        EXPECT_EQ(picked[i], selector.select_uid(instances[i]))
            << learner << " grid[" << i << "] @" << threads;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CompiledEquivalence,
                         ::testing::Values(11u, 23u, 47u));

// ---- fault-injection equivalence -----------------------------------------

TEST(CompiledBank, ForcedPredictionsMatchInterpretedPath) {
  const bench::Dataset ds = random_dataset(5);
  tune::Selector selector(tune::SelectorOptions{.learner = "knn"});
  ASSERT_GT(selector.fit(ds, ds.node_counts()).uids_total(), 2u);
  const tune::CompiledBank bank = selector.compile();
  const std::vector<int> uids = selector.uids();
  const bench::Instance inst{8, 4, 4096};

  // Poison one uid: both paths must exclude it identically.
  {
    fi::ScopedFaults faults(
        {.forced_predictions = {{uids.front(), -1.0}}});
    expect_identical(selector, bank, inst);
    EXPECT_EQ(selector.select_uid(inst), bank.select_uid(inst));
  }
  // Poison every uid: both paths must degrade to the library default.
  {
    fi::Faults faults;
    for (const int uid : uids) {
      faults.forced_predictions[uid] = std::nan("");
    }
    fi::ScopedFaults scoped(std::move(faults));
    const int interpreted = selector.select_uid_or_default(
        inst, sim::MpiLib::kOpenMPI, sim::Collective::kBcast);
    const int compiled = bank.select_uid_or_default(
        inst, sim::MpiLib::kOpenMPI, sim::Collective::kBcast);
    EXPECT_EQ(interpreted, compiled);
  }
}

// ---- blocked batched layout vs legacy fused argmin ------------------------

TEST(CompiledBankLayouts, BatchedGridAndBothEnvelopesMatchLegacyArgmin) {
  const bench::Dataset ds = random_dataset(19);
  std::vector<bench::Instance> grid = ds.instances();
  const std::vector<bench::Instance> off = random_instances(57, 48);
  grid.insert(grid.end(), off.begin(), off.end());

  for (const char* learner : kAllLearners) {
    tune::Selector selector(tune::SelectorOptions{.learner = learner});
    ASSERT_GT(selector.fit(ds, ds.node_counts()).uids_total(), 0u)
        << learner;
    const tune::CompiledBank bank = selector.compile();

    // Both envelope versions load: v1 is the PR 8 format byte-for-byte,
    // v2 nests the blocked flatbank geometry. Each re-lowers its
    // blocked form on load.
    namespace fs = std::filesystem;
    const fs::path p1 = fs::temp_directory_path() /
                        (std::string("mpicp_cb_v1_") + learner + ".txt");
    const fs::path p2 = fs::temp_directory_path() /
                        (std::string("mpicp_cb_v2_") + learner + ".txt");
    bank.save(p1, 1);
    bank.save(p2, 2);
    const tune::CompiledBank v1 = tune::CompiledBank::load(p1);
    const tune::CompiledBank v2 = tune::CompiledBank::load(p2);
    fs::remove(p1);
    fs::remove(p2);

    std::vector<int> batched(grid.size(), 0);
    for (const int threads : {1, 4}) {
      support::ScopedThreads scoped(threads);
      const std::vector<int> legacy = bank.select_grid_legacy(grid);
      bank.select_grid_into(grid, batched);
      ASSERT_EQ(legacy.size(), grid.size());
      for (std::size_t i = 0; i < grid.size(); ++i) {
        ASSERT_EQ(batched[i], legacy[i])
            << learner << " batched argmin @" << threads << " threads, m="
            << grid[i].msize << " n=" << grid[i].nodes
            << " ppn=" << grid[i].ppn;
      }
      EXPECT_EQ(v1.select_grid(grid), legacy)
          << learner << " v1 envelope @" << threads << " threads";
      EXPECT_EQ(v2.select_grid(grid), legacy)
          << learner << " v2 envelope @" << threads << " threads";
    }
  }
}

TEST(CompiledBankLayouts, BatchedGridHonorsFaultInjection) {
  const bench::Dataset ds = random_dataset(19);
  const std::vector<bench::Instance> grid = ds.instances();
  for (const char* learner : {"xgboost", "rf"}) {
    tune::Selector selector(tune::SelectorOptions{.learner = learner});
    ASSERT_GT(selector.fit(ds, ds.node_counts()).uids_total(), 2u)
        << learner;
    const tune::CompiledBank bank = selector.compile();
    const std::vector<int> uids = selector.uids();

    // Poison one uid: the batched path must exclude it exactly like the
    // legacy fused walk does.
    fi::ScopedFaults faults({.forced_predictions = {{uids.front(), -1.0}}});
    const std::vector<int> legacy = bank.select_grid_legacy(grid);
    const std::vector<int> batched = bank.select_grid(grid);
    EXPECT_EQ(batched, legacy) << learner;
    for (const int pick : batched) {
      EXPECT_NE(pick, uids.front()) << learner;
    }
  }
}

// ---- selection cache ------------------------------------------------------

TEST(CompiledBank, SelectionCacheCountsHitsAndMisses) {
  const bench::Dataset ds = random_dataset(7);
  tune::Selector selector(tune::SelectorOptions{.learner = "gam"});
  ASSERT_GT(selector.fit(ds, ds.node_counts()).uids_total(), 0u);
  tune::CompiledBank bank = selector.compile();
  EXPECT_FALSE(bank.cache_enabled());

  bank.set_cache_enabled(true);
  const std::uint64_t hits0 =
      metrics::counter("compiled.cache.hits").value();
  const std::uint64_t misses0 =
      metrics::counter("compiled.cache.misses").value();

  const bench::Instance a{8, 4, 1024};
  const bench::Instance b{16, 2, 65536};
  const int first = bank.select_uid(a);
  EXPECT_EQ(bank.select_uid(a), first);   // hit
  EXPECT_EQ(bank.select_uid(a), first);   // hit
  (void)bank.select_uid(b);               // second distinct key: miss

  const auto stats = bank.cache_stats();
  EXPECT_EQ(stats.hits, 2u);
  EXPECT_EQ(stats.misses, 2u);
  EXPECT_EQ(metrics::counter("compiled.cache.hits").value() - hits0, 2u);
  EXPECT_EQ(metrics::counter("compiled.cache.misses").value() - misses0,
            2u);

  // Cached answers are the same answers.
  bank.set_cache_enabled(false);
  EXPECT_EQ(bank.cache_stats().hits, 0u);  // transition clears stats
  EXPECT_EQ(bank.select_uid(a), first);
}

TEST(CompiledBank, CachedGridSelectionMatchesUncached) {
  const bench::Dataset ds = random_dataset(9);
  tune::Selector selector(tune::SelectorOptions{.learner = "rf"});
  ASSERT_GT(selector.fit(ds, ds.node_counts()).uids_total(), 0u);
  tune::CompiledBank bank = selector.compile();

  // A grid with repeated instances: the memo must not change answers.
  auto grid = random_instances(31, 12);
  const auto repeats = grid;
  grid.insert(grid.end(), repeats.begin(), repeats.end());
  const std::vector<int> uncached = bank.select_grid(grid);
  bank.set_cache_enabled(true);
  const std::vector<int> cached = bank.select_grid(grid);
  EXPECT_EQ(uncached, cached);
  const auto stats = bank.cache_stats();
  EXPECT_EQ(stats.hits + stats.misses, grid.size());
  EXPECT_LE(stats.misses, repeats.size());  // every repeat is a hit
}

// ---- save / load round trip ----------------------------------------------

TEST(CompiledBank, SaveLoadRoundTripIsExact) {
  const bench::Dataset ds = random_dataset(13);
  const auto instances = random_instances(17, 16);
  for (const char* learner : kAllLearners) {
    tune::Selector selector(tune::SelectorOptions{.learner = learner});
    ASSERT_GT(selector.fit(ds, ds.node_counts()).uids_total(), 0u)
        << learner;
    const tune::CompiledBank bank = selector.compile();

    const std::filesystem::path path =
        std::filesystem::temp_directory_path() /
        (std::string("mpicp_compiled_bank_") + learner + ".txt");
    bank.save(path);
    const tune::CompiledBank loaded = tune::CompiledBank::load(path);
    std::filesystem::remove(path);

    EXPECT_EQ(loaded.uids(), bank.uids()) << learner;
    for (const bench::Instance& inst : instances) {
      const auto before = bank.predict_all(inst);
      const auto after = loaded.predict_all(inst);
      ASSERT_EQ(before.size(), after.size());
      for (std::size_t i = 0; i < before.size(); ++i) {
        EXPECT_EQ(before[i].time_us, after[i].time_us)
            << learner << " uid " << before[i].uid;
        EXPECT_EQ(before[i].usable, after[i].usable);
      }
    }
  }
}

// ---- contracts ------------------------------------------------------------

TEST(CompiledBank, CompilingAnUnfittedSelectorThrows) {
  tune::Selector selector;
  EXPECT_THROW((void)selector.compile(), std::exception);
}

TEST(CompiledBank, ServingFromAnEmptyBankThrows) {
  const tune::CompiledBank bank;
  EXPECT_THROW((void)bank.select_uid({4, 4, 1024}), std::exception);
  EXPECT_THROW((void)bank.predict_all({4, 4, 1024}), std::exception);
}

}  // namespace
}  // namespace mpicp
