// Tests for the from-scratch ML library: linear algebra, metrics, trees,
// gradient boosting, KNN, splines, GAM, random forest, CV utilities.
#include <gtest/gtest.h>

#include <cmath>

#include "ml/cv.hpp"
#include "ml/forest.hpp"
#include "ml/gam.hpp"
#include "ml/gbt.hpp"
#include "ml/knn.hpp"
#include "ml/linreg.hpp"
#include "ml/metrics.hpp"
#include "ml/spline.hpp"
#include "ml/tree.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"

namespace mpicp::ml {
namespace {

/// Synthetic runtime-like dataset: y = exp of a smooth function of two
/// features, with optional multiplicative noise.
struct Synth {
  Matrix x;
  std::vector<double> y;
};

Synth make_synth(std::size_t n, double noise_sigma, std::uint64_t seed) {
  support::Xoshiro256 rng(seed);
  Synth s;
  s.x = Matrix(n, 2);
  s.y.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double a = rng.uniform(0.0, 22.0);  // "log2 msize"
    const double b = rng.uniform(1.0, 36.0);  // "nodes"
    s.x(i, 0) = a;
    s.x(i, 1) = b;
    const double log_t =
        0.1 * a + 0.03 * b + 0.5 * std::sin(a / 3.0) + 1.0;
    s.y[i] = std::exp(log_t) *
             (noise_sigma > 0.0 ? rng.lognormal_median(1.0, noise_sigma)
                                : 1.0);
  }
  return s;
}

TEST(MatrixTest, GramAndSolve) {
  Matrix x(3, 2);
  x(0, 0) = 1;
  x(0, 1) = 2;
  x(1, 0) = 3;
  x(1, 1) = 4;
  x(2, 0) = 5;
  x(2, 1) = 6;
  const Matrix g = x.gram();
  EXPECT_DOUBLE_EQ(g(0, 0), 35.0);
  EXPECT_DOUBLE_EQ(g(0, 1), 44.0);
  EXPECT_DOUBLE_EQ(g(1, 0), 44.0);
  EXPECT_DOUBLE_EQ(g(1, 1), 56.0);

  // Solve a small SPD system: A = [[4,1],[1,3]], b = [1,2].
  Matrix a(2, 2);
  a(0, 0) = 4;
  a(0, 1) = 1;
  a(1, 0) = 1;
  a(1, 1) = 3;
  const auto sol = cholesky_solve(a, {1.0, 2.0});
  EXPECT_NEAR(sol[0], 1.0 / 11.0, 1e-9);
  EXPECT_NEAR(sol[1], 7.0 / 11.0, 1e-9);
}

TEST(MatrixTest, SolveRejectsIndefinite) {
  Matrix a(2, 2);
  a(0, 0) = 1;
  a(0, 1) = 5;
  a(1, 0) = 5;
  a(1, 1) = 1;  // indefinite
  // Escalating jitter eventually regularizes it or throws; either way it
  // must not return garbage silently for a wildly indefinite matrix.
  EXPECT_NO_THROW({
    const auto sol = cholesky_solve(a, {1.0, 1.0}, 1e-10);
    (void)sol;
  });
}

TEST(MetricsTest, Basics) {
  const std::vector<double> t = {1, 2, 3};
  const std::vector<double> p = {1, 2, 5};
  EXPECT_NEAR(mae(t, p), 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(rmse(t, p), std::sqrt(4.0 / 3.0), 1e-12);
  EXPECT_NEAR(mape(t, p), (2.0 / 3.0) / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(r2(t, t), 1.0);
  EXPECT_LT(r2(t, p), 1.0);
}

TEST(BinnerTest, LosslessForFewDistinctValues) {
  Matrix x(6, 1);
  const double vals[] = {1, 1, 4, 4, 9, 9};
  for (int i = 0; i < 6; ++i) x(i, 0) = vals[i];
  const FeatureBinner binner(x);
  EXPECT_EQ(binner.num_bins(0), 3);
  EXPECT_EQ(binner.bin_of(0, 1), 0);
  EXPECT_EQ(binner.bin_of(0, 4), 1);
  EXPECT_EQ(binner.bin_of(0, 9), 2);
  EXPECT_EQ(binner.bin_of(0, 100), 2);  // clamp right
}

TEST(TreeTest, FitsStepFunction) {
  Matrix x(100, 1);
  std::vector<GradPair> gh(100);
  for (int i = 0; i < 100; ++i) {
    x(i, 0) = i;
    const double target = i < 50 ? 1.0 : 9.0;
    gh[i] = {-target, 1.0};  // leaf = mean(target)
  }
  const FeatureBinner binner(x);
  RegressionTree tree;
  std::vector<int> rows(100);
  for (int i = 0; i < 100; ++i) rows[i] = i;
  TreeParams params;
  params.lambda = 0.0;
  tree.fit(binner, binner.encode(x), 1, gh, rows, params);
  EXPECT_NEAR(tree.predict_one(std::vector<double>{10.0}), 1.0, 1e-6);
  EXPECT_NEAR(tree.predict_one(std::vector<double>{90.0}), 9.0, 1e-6);
  EXPECT_GE(tree.num_nodes(), 3);
}

TEST(GbtTest, TrainingLossDecreasesMonotonically) {
  const Synth s = make_synth(400, 0.05, 1);
  GradientBoostedTrees model;
  model.fit(s.x, s.y);
  const auto& loss = model.training_loss();
  ASSERT_GE(loss.size(), 10u);
  for (std::size_t i = 1; i < loss.size(); ++i) {
    EXPECT_LE(loss[i], loss[i - 1] + 1e-9) << "round " << i;
  }
}

class GbtObjectives : public ::testing::TestWithParam<GbtObjective> {};

TEST_P(GbtObjectives, RecoversSmoothPositiveFunction) {
  const Synth train = make_synth(800, 0.03, 2);
  const Synth test = make_synth(200, 0.0, 3);
  GbtParams params;
  params.objective = GetParam();
  GradientBoostedTrees model(params);
  model.fit(train.x, train.y);
  const auto pred = model.predict(test.x);
  EXPECT_LT(mape(test.y, pred), 0.15);
  for (const double p : pred) EXPECT_GT(p, 0.0);
}

INSTANTIATE_TEST_SUITE_P(Objectives, GbtObjectives,
                         ::testing::Values(GbtObjective::kSquared,
                                           GbtObjective::kGamma,
                                           GbtObjective::kTweedie));

TEST(GbtTest, FeatureImportanceFindsTheDominantFeature) {
  // y depends strongly on feature 0 and not at all on feature 1 — the
  // gain importance must reflect that (the paper's observation that
  // message size dominates).
  support::Xoshiro256 rng(42);
  Matrix x(500, 2);
  std::vector<double> y(500);
  for (int i = 0; i < 500; ++i) {
    x(i, 0) = rng.uniform(0.0, 10.0);
    x(i, 1) = rng.uniform(0.0, 10.0);
    y[i] = std::exp(0.5 * x(i, 0));
  }
  GradientBoostedTrees model;
  model.fit(x, y);
  const auto imp = model.feature_importance();
  ASSERT_EQ(imp.size(), 2u);
  EXPECT_NEAR(imp[0] + imp[1], 1.0, 1e-9);
  EXPECT_GT(imp[0], 0.95);
}

TEST(GbtTest, RejectsNonPositiveTargetsForLogLink) {
  Matrix x(2, 1);
  x(1, 0) = 1;
  GradientBoostedTrees model;
  EXPECT_THROW(model.fit(x, std::vector<double>{1.0, -1.0}), Error);
}

TEST(KnnTest, ExactOnTrainingPointsForK1) {
  const Synth s = make_synth(200, 0.0, 4);
  KnnParams params;
  params.k = 1;
  KnnRegressor model(params);
  model.fit(s.x, s.y);
  for (std::size_t i = 0; i < 20; ++i) {
    EXPECT_NEAR(model.predict_one(s.x.row(i)), s.y[i], 1e-9);
  }
}

TEST(KnnTest, KdTreeMatchesBruteForce) {
  const Synth s = make_synth(500, 0.1, 5);
  KnnParams kd;
  kd.use_kdtree = true;
  KnnParams brute;
  brute.use_kdtree = false;
  KnnRegressor a(kd);
  KnnRegressor b(brute);
  a.fit(s.x, s.y);
  b.fit(s.x, s.y);
  support::Xoshiro256 rng(6);
  for (int i = 0; i < 200; ++i) {
    const std::vector<double> q = {rng.uniform(-1.0, 23.0),
                                   rng.uniform(0.0, 40.0)};
    EXPECT_NEAR(a.predict_one(q), b.predict_one(q), 1e-9);
  }
}

TEST(KnnTest, GeneralizesSmoothFunction) {
  const Synth train = make_synth(1000, 0.03, 7);
  const Synth test = make_synth(100, 0.0, 8);
  KnnRegressor model;
  model.fit(train.x, train.y);
  const auto pred = model.predict(test.x);
  EXPECT_LT(mape(test.y, pred), 0.2);
}

TEST(SplineTest, PartitionOfUnity) {
  const BSplineBasis basis(0.0, 10.0, 8);
  for (double x = 0.0; x <= 10.0; x += 0.173) {
    const auto b = basis.evaluate(x);
    double sum = 0.0;
    for (const double v : b) {
      EXPECT_GE(v, -1e-12);
      sum += v;
    }
    EXPECT_NEAR(sum, 1.0, 1e-9) << "x=" << x;
  }
}

TEST(SplineTest, PenaltyVanishesForLinearCoefficients) {
  const BSplineBasis basis(0.0, 1.0, 6);
  const Matrix pen = basis.penalty();
  // beta linear in index -> second differences zero -> beta' S beta = 0.
  double quad = 0.0;
  for (int a = 0; a < 6; ++a) {
    for (int b = 0; b < 6; ++b) {
      quad += (2.0 * a + 1.0) * pen(a, b) * (2.0 * b + 1.0);
    }
  }
  EXPECT_NEAR(quad, 0.0, 1e-9);
}

TEST(GamTest, FitsMultiplicativeSurface) {
  const Synth train = make_synth(800, 0.03, 9);
  const Synth test = make_synth(200, 0.0, 10);
  GamRegressor model;
  model.fit(train.x, train.y);
  const auto pred = model.predict(test.x);
  EXPECT_LT(mape(test.y, pred), 0.12);
  for (const double p : pred) EXPECT_GT(p, 0.0);
  EXPECT_GE(model.iterations_used(), 1);
}

TEST(GamTest, RejectsNonPositiveTargets) {
  Matrix x(3, 1);
  GamRegressor model;
  EXPECT_THROW(model.fit(x, std::vector<double>{1.0, 0.0, 2.0}), Error);
}

TEST(ForestTest, FitsAndIsDeterministic) {
  const Synth train = make_synth(500, 0.05, 11);
  const Synth test = make_synth(100, 0.0, 12);
  RandomForest a;
  RandomForest b;
  a.fit(train.x, train.y);
  b.fit(train.x, train.y);
  const auto pa = a.predict(test.x);
  const auto pb = b.predict(test.x);
  for (std::size_t i = 0; i < pa.size(); ++i) {
    EXPECT_DOUBLE_EQ(pa[i], pb[i]);
  }
  EXPECT_LT(mape(test.y, pa), 0.2);
}

TEST(LinearTest, RecoversLogLinearModel) {
  support::Xoshiro256 rng(13);
  Matrix x(300, 2);
  std::vector<double> y(300);
  for (int i = 0; i < 300; ++i) {
    x(i, 0) = rng.uniform(0.0, 10.0);
    x(i, 1) = rng.uniform(0.0, 5.0);
    y[i] = std::exp(0.5 + 0.2 * x(i, 0) - 0.1 * x(i, 1));
  }
  LinearRegressor model;
  model.fit(x, y);
  EXPECT_NEAR(model.coefficients()[0], 0.5, 1e-6);
  EXPECT_NEAR(model.coefficients()[1], 0.2, 1e-6);
  EXPECT_NEAR(model.coefficients()[2], -0.1, 1e-6);
}

TEST(LinearTest, CannotFitNonlinearSurfaceWellButGbtCan) {
  // The paper's observation: linear regression fails on these surfaces.
  const Synth train = make_synth(800, 0.0, 14);
  const Synth test = make_synth(200, 0.0, 15);
  LinearRegressor lin;
  lin.fit(train.x, train.y);
  GradientBoostedTrees gbt;
  gbt.fit(train.x, train.y);
  const double lin_err = mape(test.y, lin.predict(test.x));
  const double gbt_err = mape(test.y, gbt.predict(test.x));
  EXPECT_LT(gbt_err, lin_err);
}

TEST(CvTest, SplitsPartition) {
  const Split s = holdout_split(100, 0.2, 1);
  EXPECT_EQ(s.train.size() + s.test.size(), 100u);
  EXPECT_EQ(s.test.size(), 20u);

  const auto folds = kfold_splits(30, 3, 2);
  ASSERT_EQ(folds.size(), 3u);
  std::vector<int> seen(30, 0);
  for (const Split& f : folds) {
    EXPECT_EQ(f.train.size() + f.test.size(), 30u);
    for (const std::size_t i : f.test) ++seen[i];
  }
  for (const int c : seen) EXPECT_EQ(c, 1);  // each row in one test fold
}

TEST(CvTest, KfoldRmseRuns) {
  const Synth s = make_synth(200, 0.05, 16);
  const double err = kfold_rmse("knn", s.x, s.y, 4, 3);
  EXPECT_GT(err, 0.0);
  EXPECT_LT(err, 10.0);
}

TEST(FactoryTest, AllLearnersConstructAndFit) {
  const Synth s = make_synth(150, 0.05, 17);
  for (const char* name : kLearnerNames) {
    auto model = make_regressor(name);
    model->fit(s.x, s.y);
    const double p = model->predict_one(s.x.row(0));
    EXPECT_GT(p, 0.0) << name;
    EXPECT_TRUE(std::isfinite(p)) << name;
  }
  EXPECT_THROW(make_regressor("nope"), InvalidArgument);
}

}  // namespace
}  // namespace mpicp::ml
