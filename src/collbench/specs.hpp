// Dataset specifications d1..d8 (the paper's Table II) and the
// training/test node splits (Table III).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "collbench/runner.hpp"
#include "simmpi/coll/registry.hpp"
#include "simmpi/coll/types.hpp"

namespace mpicp::bench {

struct DatasetSpec {
  std::string name;           ///< d1 .. d8
  sim::Collective coll;
  sim::MpiLib lib;
  std::string lib_version;    ///< cosmetic (Table II column)
  std::string machine;        ///< simnet machine preset name
  std::vector<int> nodes;
  std::vector<int> ppns;
  std::vector<std::uint64_t> msizes;
  RunnerBudget budget;
  std::uint64_t seed = 0;     ///< noise/measurement seed
};

/// All eight dataset specs, in paper order.
const std::vector<DatasetSpec>& all_dataset_specs();

/// Spec by name ("d1" .. "d8"); throws InvalidArgument if unknown.
const DatasetSpec& dataset_spec(const std::string& name);

/// Node-count splits per machine (Table III).
struct NodeSplit {
  std::vector<int> train_full;
  std::vector<int> train_small;
  std::vector<int> test;
};

NodeSplit node_split(const std::string& machine);

/// Message sizes of the fixed-buffer collectives (10 sizes, 1 B..4 MiB).
const std::vector<std::uint64_t>& standard_msizes();

}  // namespace mpicp::bench
