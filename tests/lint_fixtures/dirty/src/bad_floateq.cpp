// Fixture: violates no-float-eq (R6).
bool fixture_floateq(double x) {
  return x == 0.0;
}
