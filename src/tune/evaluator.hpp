// The paper's evaluation harness (§V): compare three strategies on
// held-out instances — the exhaustive-search best, the library's default
// decision logic, and the regression-based prediction. All strategies
// are scored by the *actually measured* running time of the algorithm
// they pick (the dataset contains every configuration, so no re-running
// is needed).
#pragma once

#include <string>
#include <vector>

#include "collbench/dataset.hpp"
#include "collbench/defaults.hpp"
#include "tune/selector.hpp"

namespace mpicp::tune {

/// One evaluated instance.
struct EvalRow {
  bench::Instance inst;
  int best_uid = 0;
  int default_uid = 0;
  int predicted_uid = 0;
  double t_best_us = 0.0;
  double t_default_us = 0.0;
  double t_predicted_us = 0.0;

  double norm_default() const { return t_default_us / t_best_us; }
  double norm_predicted() const { return t_predicted_us / t_best_us; }
  /// Relative speed-up of the prediction over the default (>1: faster).
  double speedup() const { return t_default_us / t_predicted_us; }
};

struct EvalSummary {
  std::size_t num_instances = 0;
  double mean_speedup = 0.0;        ///< Table IV metric
  double geomean_speedup = 0.0;
  double mean_norm_default = 0.0;   ///< avg t_default / t_best
  double mean_norm_predicted = 0.0; ///< avg t_predicted / t_best
  double fraction_optimal = 0.0;    ///< prediction picked the actual best
};

struct Evaluation {
  std::vector<EvalRow> rows;
  EvalSummary summary;
  /// Fit health of the selector trained by run_split_evaluation (empty
  /// when the caller fitted the selector itself, as with evaluate()).
  FitReport fit_report;
};

/// Evaluate a fitted selector against the default logic on every dataset
/// instance whose node count is in `test_nodes`.
[[nodiscard]] Evaluation evaluate(
    const bench::Dataset& ds, const Selector& selector,
                    const bench::DefaultLogic& default_logic,
                    const std::vector<int>& test_nodes);

/// Convenience: fit a selector with `learner` on the machine's training
/// split and evaluate it on the test split (paper Table IV cell).
[[nodiscard]] Evaluation run_split_evaluation(const bench::Dataset& ds,
                                              const std::string& learner,
                                              bool small_training_set);

}  // namespace mpicp::tune
