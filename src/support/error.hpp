// Error handling primitives shared by all mpicp libraries.
//
// Follows C++ Core Guidelines E.2/E.3: throw exceptions to signal that a
// function cannot perform its task; use them only for error handling.
#pragma once

#include <source_location>
#include <sstream>
#include <stdexcept>
#include <string>

namespace mpicp {

/// Base class for all errors raised by the mpicp libraries.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Raised when an argument violates a documented precondition.
class InvalidArgument : public Error {
 public:
  explicit InvalidArgument(const std::string& what) : Error(what) {}
};

/// Raised on malformed external input (files, CLI).
class ParseError : public Error {
 public:
  explicit ParseError(const std::string& what) : Error(what) {}
};

/// Raised when an internal invariant is broken (a bug in mpicp itself).
class InternalError : public Error {
 public:
  explicit InternalError(const std::string& what) : Error(what) {}
};

namespace detail {

/// Which check macro fired — selects both the message prefix and the
/// exception type without string comparisons on the failure path.
enum class FailKind { kPrecondition, kInvariant, kParse, kGeneric };

[[noreturn]] inline void raise(FailKind kind, const std::string& what) {
  switch (kind) {
    case FailKind::kPrecondition: throw InvalidArgument(what);
    case FailKind::kParse: throw ParseError(what);
    case FailKind::kGeneric: throw Error(what);
    case FailKind::kInvariant: break;
  }
  throw InternalError(what);
}

[[noreturn]] inline void fail(FailKind kind, const char* expr,
                              const std::string& msg,
                              const std::source_location& loc) {
  const char* label = "internal invariant violated";
  switch (kind) {
    case FailKind::kPrecondition: label = "precondition violated"; break;
    case FailKind::kParse: label = "malformed input"; break;
    case FailKind::kGeneric:
    case FailKind::kInvariant: break;
  }
  std::ostringstream os;
  os << label << ": " << expr;
  if (!msg.empty()) os << " — " << msg;
  os << " [" << loc.file_name() << ':' << loc.line() << ']';
  raise(kind, os.str());
}

/// Implementation of the MPICP_RAISE_* macros: the user message plus the
/// raise site, so every error in a log is attributable without a
/// debugger.
[[noreturn]] inline void raise_at(FailKind kind, const std::string& msg,
                                  const std::source_location& loc) {
  std::ostringstream os;
  os << msg << " [" << loc.file_name() << ':' << loc.line() << ']';
  raise(kind, os.str());
}

}  // namespace detail

}  // namespace mpicp

/// Check a caller-facing precondition; throws mpicp::InvalidArgument.
#define MPICP_REQUIRE(expr, msg)                                          \
  do {                                                                    \
    if (!(expr)) {                                                        \
      ::mpicp::detail::fail(::mpicp::detail::FailKind::kPrecondition,     \
                            #expr, (msg),                                 \
                            std::source_location::current());             \
    }                                                                     \
  } while (0)

/// Check an internal invariant; throws mpicp::InternalError.
#define MPICP_ASSERT(expr, msg)                                           \
  do {                                                                    \
    if (!(expr)) {                                                        \
      ::mpicp::detail::fail(::mpicp::detail::FailKind::kInvariant, #expr, \
                            (msg), std::source_location::current());      \
    }                                                                     \
  } while (0)

/// Validate external input (file contents, wire formats); throws
/// mpicp::ParseError. Use at ingest sites instead of hand-rolled
/// `throw ParseError(...)` so the message carries the failing expression
/// and source location.
#define MPICP_CHECK_PARSE(expr, msg)                                      \
  do {                                                                    \
    if (!(expr)) {                                                        \
      ::mpicp::detail::fail(::mpicp::detail::FailKind::kParse, #expr,     \
                            (msg), std::source_location::current());      \
    }                                                                     \
  } while (0)

// Unconditional raise macros — the project-sanctioned replacement for a
// bare `throw <Type>(msg)` in library code (lint rule R5, see
// tools/mpicp_lint). They go through detail::raise_at so the message
// carries the raise site, and they are statements usable anywhere a
// throw-statement was (after `if`, as a `default:` body, as the
// fall-through tail of a lookup function — the compiler still sees the
// enclosed call as [[noreturn]]).

/// Raise mpicp::InvalidArgument: a caller-facing precondition that has
/// no single checkable expression (e.g. "name not in registry").
#define MPICP_RAISE_ARG(msg)                                              \
  ::mpicp::detail::raise_at(::mpicp::detail::FailKind::kPrecondition,     \
                            (msg), std::source_location::current())

/// Raise mpicp::InternalError: a broken internal invariant reached
/// without a checkable expression (e.g. an unhandled enum value).
#define MPICP_RAISE_INTERNAL(msg)                                         \
  ::mpicp::detail::raise_at(::mpicp::detail::FailKind::kInvariant, (msg), \
                            std::source_location::current())

/// Raise mpicp::ParseError: malformed external input.
#define MPICP_RAISE_PARSE(msg)                                            \
  ::mpicp::detail::raise_at(::mpicp::detail::FailKind::kParse, (msg),     \
                            std::source_location::current())

/// Raise the root mpicp::Error: environment/I-O failures that are
/// neither caller bugs nor malformed input (e.g. an unwritable file).
#define MPICP_RAISE_ERROR(msg)                                            \
  ::mpicp::detail::raise_at(::mpicp::detail::FailKind::kGeneric, (msg),   \
                            std::source_location::current())
