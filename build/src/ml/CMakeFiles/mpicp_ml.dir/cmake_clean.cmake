file(REMOVE_RECURSE
  "CMakeFiles/mpicp_ml.dir/cv.cpp.o"
  "CMakeFiles/mpicp_ml.dir/cv.cpp.o.d"
  "CMakeFiles/mpicp_ml.dir/forest.cpp.o"
  "CMakeFiles/mpicp_ml.dir/forest.cpp.o.d"
  "CMakeFiles/mpicp_ml.dir/gam.cpp.o"
  "CMakeFiles/mpicp_ml.dir/gam.cpp.o.d"
  "CMakeFiles/mpicp_ml.dir/gbt.cpp.o"
  "CMakeFiles/mpicp_ml.dir/gbt.cpp.o.d"
  "CMakeFiles/mpicp_ml.dir/knn.cpp.o"
  "CMakeFiles/mpicp_ml.dir/knn.cpp.o.d"
  "CMakeFiles/mpicp_ml.dir/learner.cpp.o"
  "CMakeFiles/mpicp_ml.dir/learner.cpp.o.d"
  "CMakeFiles/mpicp_ml.dir/linreg.cpp.o"
  "CMakeFiles/mpicp_ml.dir/linreg.cpp.o.d"
  "CMakeFiles/mpicp_ml.dir/matrix.cpp.o"
  "CMakeFiles/mpicp_ml.dir/matrix.cpp.o.d"
  "CMakeFiles/mpicp_ml.dir/metrics.cpp.o"
  "CMakeFiles/mpicp_ml.dir/metrics.cpp.o.d"
  "CMakeFiles/mpicp_ml.dir/spline.cpp.o"
  "CMakeFiles/mpicp_ml.dir/spline.cpp.o.d"
  "CMakeFiles/mpicp_ml.dir/tree.cpp.o"
  "CMakeFiles/mpicp_ml.dir/tree.cpp.o.d"
  "libmpicp_ml.a"
  "libmpicp_ml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpicp_ml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
