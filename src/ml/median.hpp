// Constant (per-bank median) predictor — the last rung of the selector's
// fit fallback chain.
//
// When every real learner fails on a degenerate uid (singular normal
// equations, an all-identical feature column, too few rows), predicting
// the median of the observed timings keeps the uid in the model bank
// with the least-wrong constant: the argmin still sees a finite,
// plausible value instead of losing the configuration entirely.
#pragma once

#include "ml/learner.hpp"

namespace mpicp::ml {

class MedianRegressor : public Regressor {
 public:
  MedianRegressor() = default;

  void fit(const Matrix& x, std::span<const double> y) override;
  double predict_one(std::span<const double> x) const override;
  std::string name() const override { return "median"; }
  void save(std::ostream& os) const override;
  void load(std::istream& is) override;

  /// The fitted constant (for the compiled bank's lowering pass).
  double value() const { return median_; }

 private:
  double median_ = 0.0;
  bool fitted_ = false;
};

}  // namespace mpicp::ml
