// Fixture: every violation here carries a suppression — same-line
// allow, own-line allow applying to the next code line, and allow(all).
#include <cstdio>

void fixture_suppressed(double x) {
  printf("%f\n", x);  // mpicp-lint: allow(no-stdout)
  // mpicp-lint: allow(no-float-eq)
  if (x == 0.0) {
    // mpicp-lint: allow(all)
    printf("zero\n");
  }
}
