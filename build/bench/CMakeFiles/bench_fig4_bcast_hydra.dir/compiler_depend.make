# Empty compiler generated dependencies file for bench_fig4_bcast_hydra.
# This may be replaced when dependencies are built.
