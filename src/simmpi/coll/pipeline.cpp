#include "simmpi/coll/pipeline.hpp"

#include <algorithm>

#include "support/error.hpp"
#include "support/trace.hpp"

namespace mpicp::sim {

std::vector<std::uint32_t> even_chunks(std::size_t total, int nchunks) {
  MPICP_REQUIRE(nchunks >= 1, "need at least one chunk");
  std::vector<std::uint32_t> chunks(nchunks);
  const std::size_t base = total / static_cast<std::size_t>(nchunks);
  const std::size_t rem = total % static_cast<std::size_t>(nchunks);
  for (int c = 0; c < nchunks; ++c) {
    chunks[c] = static_cast<std::uint32_t>(
        base + (static_cast<std::size_t>(c) < rem ? 1 : 0));
  }
  return chunks;
}

std::uint64_t chunk_range_bytes(const std::vector<std::uint32_t>& chunks,
                                int begin, int end) {
  std::uint64_t sum = 0;
  for (int c = begin; c < end; ++c) sum += chunks[c];
  return sum;
}

int floor_pow2(int p) {
  MPICP_REQUIRE(p >= 1, "floor_pow2 of non-positive value");
  int v = 1;
  while (v * 2 <= p) v *= 2;
  return v;
}

int ceil_log2(int p) {
  MPICP_REQUIRE(p >= 1, "ceil_log2 of non-positive value");
  int l = 0;
  int v = 1;
  while (v < p) {
    v *= 2;
    ++l;
  }
  return l;
}

// Receive prefetch depth of the segmented pipelines. Two outstanding
// receives (double buffering) hide the rendezvous handshake of segment
// s+1 behind the transfer of segment s, as real pipelined
// implementations do.
constexpr std::uint32_t kPipelineWindow = 2;

void emit_tree_bcast(ProgramSet& progs, const VrankMap& map,
                     const Tree& tree, const Segmentation& seg,
                     std::uint16_t tag, std::uint32_t block_base) {
  MPICP_SPAN("sim.pipeline.tree_bcast");
  const int p = static_cast<int>(tree.size());
  const std::uint32_t w = std::min(kPipelineWindow, seg.nseg);
  for (int v = 0; v < p; ++v) {
    const int rank = map.rank_of(v);
    RankProg prog(progs[rank], rank, map.world);
    const TreeNode& node = tree[v];
    const int parent =
        node.parent >= 0 ? map.rank_of(node.parent) : -1;
    if (parent >= 0) {
      for (std::uint32_t s = 0; s < w; ++s) {
        prog.irecv(parent, tag, seg.bytes_of(s), block_base + s, 1);
      }
    }
    bool sent = false;
    for (std::uint32_t s = 0; s < seg.nseg; ++s) {
      if (parent >= 0) {
        prog.waitone();  // completes segment s
        if (s + w < seg.nseg) {
          prog.irecv(parent, tag, seg.bytes_of(s + w), block_base + s + w,
                     1);
        }
      }
      for (const int c : node.children) {
        prog.isend(map.rank_of(c), tag, seg.bytes_of(s), block_base + s, 1);
        sent = true;
      }
    }
    if (sent) prog.waitall();
  }
}

void emit_tree_reduce(ProgramSet& progs, const VrankMap& map,
                      const Tree& tree, const Segmentation& seg,
                      std::uint16_t tag, std::uint32_t block_base) {
  const int p = static_cast<int>(tree.size());
  const std::uint32_t w = std::min(kPipelineWindow, seg.nseg);
  for (int v = 0; v < p; ++v) {
    const int rank = map.rank_of(v);
    RankProg prog(progs[rank], rank, map.world);
    const TreeNode& node = tree[v];
    const std::size_t nc = node.children.size();
    // Prefetch the children's contributions for the first w segments.
    for (std::uint32_t s = 0; s < w && nc > 0; ++s) {
      for (const int c : node.children) {
        prog.irecv(map.rank_of(c), tag, seg.bytes_of(s), block_base + s, 1,
                   kCombine);
      }
    }
    bool sent = false;
    for (std::uint32_t s = 0; s < seg.nseg; ++s) {
      const std::size_t bytes = seg.bytes_of(s);
      for (std::size_t i = 0; i < nc; ++i) {
        prog.waitone();  // one child's segment s
        prog.compute(bytes);
      }
      if (nc > 0 && s + w < seg.nseg) {
        for (const int c : node.children) {
          prog.irecv(map.rank_of(c), tag, seg.bytes_of(s + w),
                     block_base + s + w, 1, kCombine);
        }
      }
      if (node.parent >= 0) {
        prog.isend(map.rank_of(node.parent), tag, bytes, block_base + s, 1);
        sent = true;
      }
    }
    if (sent) prog.waitall();
  }
}

void emit_binomial_scatter(ProgramSet& progs, const VrankMap& map,
                           const Tree& tree,
                           const std::vector<std::uint32_t>& chunk_bytes,
                           std::uint16_t tag, std::uint32_t block_base) {
  const int p = static_cast<int>(tree.size());
  MPICP_REQUIRE(static_cast<int>(chunk_bytes.size()) == p,
                "one chunk per vrank required");
  for (int v = 0; v < p; ++v) {
    const int rank = map.rank_of(v);
    RankProg prog(progs[rank], rank, map.world);
    const TreeNode& node = tree[v];
    if (node.parent >= 0) {
      prog.recv(map.rank_of(node.parent), tag,
                chunk_range_bytes(chunk_bytes, v, v + node.subtree_size),
                block_base + static_cast<std::uint32_t>(v),
                static_cast<std::uint32_t>(node.subtree_size));
    }
    bool sent = false;
    for (const int c : node.children) {
      // Subtrees of our tree constructions are contiguous vrank ranges.
      prog.isend(map.rank_of(c), tag,
                 chunk_range_bytes(chunk_bytes, c,
                                   c + tree[c].subtree_size),
                 block_base + static_cast<std::uint32_t>(c),
                 static_cast<std::uint32_t>(tree[c].subtree_size));
      sent = true;
    }
    if (sent) prog.waitall();
  }
}

void emit_ring_allgather(ProgramSet& progs, const VrankMap& map,
                         const std::vector<std::uint32_t>& chunk_bytes,
                         std::uint16_t tag, std::uint32_t block_base) {
  const int p = map.p;
  if (p == 1) return;
  for (int v = 0; v < p; ++v) {
    const int rank = map.rank_of(v);
    RankProg prog(progs[rank], rank, map.world);
    const int next = map.rank_of((v + 1) % p);
    const int prev = map.rank_of((v - 1 + p) % p);
    for (int k = 0; k < p - 1; ++k) {
      const int sc = (v - k + p) % p;
      const int rc = (v - k - 1 + p) % p;
      prog.isend(next, tag, chunk_bytes[sc],
                 block_base + static_cast<std::uint32_t>(sc), 1);
      prog.recv(prev, tag, chunk_bytes[rc],
                block_base + static_cast<std::uint32_t>(rc), 1);
      prog.waitall();
    }
  }
}

void emit_ring_reduce_scatter(ProgramSet& progs, const VrankMap& map,
                              const std::vector<std::uint32_t>& chunk_bytes,
                              std::uint16_t tag, std::uint32_t block_base) {
  const int p = map.p;
  if (p == 1) return;
  for (int v = 0; v < p; ++v) {
    const int rank = map.rank_of(v);
    RankProg prog(progs[rank], rank, map.world);
    const int next = map.rank_of((v + 1) % p);
    const int prev = map.rank_of((v - 1 + p) % p);
    for (int k = 0; k < p - 1; ++k) {
      const int sc = (v - k + p) % p;
      const int rc = (v - k - 1 + p) % p;
      prog.isend(next, tag, chunk_bytes[sc],
                 block_base + static_cast<std::uint32_t>(sc), 1);
      prog.recv(prev, tag, chunk_bytes[rc],
                block_base + static_cast<std::uint32_t>(rc), 1, kCombine);
      prog.compute(chunk_bytes[rc]);
      prog.waitall();
    }
  }
}

void emit_recdbl_allgather(ProgramSet& progs, const VrankMap& map,
                           const std::vector<std::uint32_t>& chunk_bytes,
                           std::uint16_t tag, std::uint32_t block_base) {
  const int p = map.p;
  if (p == 1) return;
  const int p2 = floor_pow2(p);
  const std::uint64_t total = chunk_range_bytes(chunk_bytes, 0, p);
  for (int v = 0; v < p; ++v) {
    const int rank = map.rank_of(v);
    RankProg prog(progs[rank], rank, map.world);
    if (v >= p2) {
      // Fold-in: ship our chunk to the partner, collect the full result.
      const int partner = map.rank_of(v - p2);
      prog.send(partner, tag, chunk_bytes[v],
                block_base + static_cast<std::uint32_t>(v), 1);
      prog.recv(partner, static_cast<std::uint16_t>(tag + 1), total,
                block_base, static_cast<std::uint32_t>(p));
      continue;
    }
    if (v + p2 < p) {
      prog.recv(map.rank_of(v + p2), tag, chunk_bytes[v + p2],
                block_base + static_cast<std::uint32_t>(v + p2), 1);
    }
    for (int d = 1; d < p2; d <<= 1) {
      const int pv = v ^ d;
      const int partner = map.rank_of(pv);
      const int a = v & ~(d - 1);   // my layer-0 base
      const int b = pv & ~(d - 1);  // partner's layer-0 base
      // Layer 0: chunks [base, base+d); layer 1: the fold-in shadow
      // [base+p2, min(base+d+p2, p)). Message order (layer 0 first) is
      // identical on both sides, so FIFO matching pairs them correctly.
      const int a1_end = std::min(a + d + p2, p);
      const int b1_end = std::min(b + d + p2, p);
      prog.irecv(partner, tag, chunk_range_bytes(chunk_bytes, b, b + d),
                 block_base + static_cast<std::uint32_t>(b),
                 static_cast<std::uint32_t>(d));
      if (b + p2 < b1_end) {
        prog.irecv(partner, tag,
                   chunk_range_bytes(chunk_bytes, b + p2, b1_end),
                   block_base + static_cast<std::uint32_t>(b + p2),
                   static_cast<std::uint32_t>(b1_end - b - p2));
      }
      prog.isend(partner, tag, chunk_range_bytes(chunk_bytes, a, a + d),
                 block_base + static_cast<std::uint32_t>(a),
                 static_cast<std::uint32_t>(d));
      if (a + p2 < a1_end) {
        prog.isend(partner, tag,
                   chunk_range_bytes(chunk_bytes, a + p2, a1_end),
                   block_base + static_cast<std::uint32_t>(a + p2),
                   static_cast<std::uint32_t>(a1_end - a - p2));
      }
      prog.waitall();
    }
    if (v + p2 < p) {
      prog.send(map.rank_of(v + p2), static_cast<std::uint16_t>(tag + 1),
                total, block_base, static_cast<std::uint32_t>(p));
    }
  }
}

}  // namespace mpicp::sim
