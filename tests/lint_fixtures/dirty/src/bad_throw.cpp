// Fixture: violates no-bare-throw (R5).
#include <stdexcept>

void fixture_throw(bool fail) {
  if (fail) throw std::runtime_error("boom");
}
