#include "tune/selector.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>

#include <chrono>

#include "ml/io.hpp"
#include "tune/compiled_bank.hpp"
#include "tune/ruletable.hpp"
#include "simmpi/coll/decision.hpp"
#include "support/error.hpp"
#include "support/faultinject.hpp"
#include "support/metrics.hpp"
#include "support/parallel.hpp"
#include "support/table.hpp"
#include "support/trace.hpp"

namespace mpicp::tune {

namespace metrics = support::metrics;

std::size_t feature_dim(const FeatureOptions& opts) {
  return opts.include_total_processes ? 4 : 3;
}

void instance_features_into(const bench::Instance& inst,
                            const FeatureOptions& opts,
                            std::span<double> out) {
  MPICP_ASSERT(out.size() == feature_dim(opts),
               "feature buffer size mismatch");
  out[0] =
      std::log2(static_cast<double>(std::max<std::uint64_t>(inst.msize, 1)));
  out[1] = static_cast<double>(inst.nodes);
  out[2] = static_cast<double>(inst.ppn);
  if (opts.include_total_processes) {
    out[3] = static_cast<double>(inst.nodes) * inst.ppn;
  }
}

std::vector<double> instance_features(const bench::Instance& inst,
                                      const FeatureOptions& opts) {
  std::vector<double> x(feature_dim(opts));
  instance_features_into(inst, opts, x);
  return x;
}

std::size_t FitReport::uids_clean() const {
  return static_cast<std::size_t>(
      std::count_if(outcomes.begin(), outcomes.end(),
                    [](const FitOutcome& o) {
                      return o.usable() && o.fallback_depth == 0;
                    }));
}

std::size_t FitReport::uids_fallback() const {
  return static_cast<std::size_t>(
      std::count_if(outcomes.begin(), outcomes.end(),
                    [](const FitOutcome& o) {
                      return o.usable() && o.fallback_depth > 0;
                    }));
}

std::size_t FitReport::uids_unusable() const {
  return static_cast<std::size_t>(
      std::count_if(outcomes.begin(), outcomes.end(),
                    [](const FitOutcome& o) { return !o.usable(); }));
}

std::size_t FitReport::rows_dropped() const {
  std::size_t n = 0;
  for (const FitOutcome& o : outcomes) n += o.rows_dropped;
  return n;
}

bool FitReport::degraded() const {
  return std::any_of(outcomes.begin(), outcomes.end(),
                     [](const FitOutcome& o) { return !o.clean(); });
}

void print_fit_report(std::ostream& os, const FitReport& report) {
  support::TextTable summary({"fit", "uids"});
  summary.add_row({"total", std::to_string(report.uids_total())});
  summary.add_row({"clean", std::to_string(report.uids_clean())});
  summary.add_row({"fallback", std::to_string(report.uids_fallback())});
  summary.add_row({"unusable", std::to_string(report.uids_unusable())});
  summary.add_row(
      {"rows dropped", std::to_string(report.rows_dropped())});
  summary.print(os);
  if (!report.degraded()) return;
  support::TextTable detail(
      {"uid", "rows", "dropped", "learner", "depth", "first error"});
  for (const FitOutcome& o : report.outcomes) {
    if (o.clean()) continue;
    detail.add_row({std::to_string(o.uid), std::to_string(o.rows_total),
                    std::to_string(o.rows_dropped),
                    o.usable() ? o.learner : "(none)",
                    std::to_string(o.fallback_depth), o.error});
  }
  detail.print(os);
}

Selector::Selector(SelectorOptions options) : options_(std::move(options)) {}

const FitReport& Selector::fit(const bench::Dataset& ds,
                               const std::vector<int>& train_nodes) {
  MPICP_SPAN("selector.fit");
  MPICP_REQUIRE(!train_nodes.empty(), "empty training node set");
  models_.clear();
  report_ = FitReport{};

  // Bucket the raw observations per uid. Membership is tested against a
  // sorted copy of the node set: one binary search per record instead of
  // a linear scan (the O(records × nodes) hot spot on large campaigns).
  std::vector<int> sorted_nodes(train_nodes);
  std::sort(sorted_nodes.begin(), sorted_nodes.end());
  std::map<int, std::vector<const bench::Record*>> rows;
  for (const bench::Record& rec : ds.records()) {
    if (!std::binary_search(sorted_nodes.begin(), sorted_nodes.end(),
                            rec.nodes)) {
      continue;
    }
    // mpicp-lint: allow(no-alloc-in-loop) per-uid buckets grow across the
    // whole ingest pass; their sizes are unknown until it finishes.
    rows[rec.uid].push_back(&rec);
  }
  MPICP_REQUIRE(!rows.empty(), "no training rows for the given node set");

  // The degradation ladder: configured learner first, then the fallback
  // chain (skipping duplicates of the configured learner).
  std::vector<std::string> chain = {options_.learner};
  chain.reserve(1 + options_.fallback_learners.size());
  for (const std::string& name : options_.fallback_learners) {
    if (std::find(chain.begin(), chain.end(), name) == chain.end()) {
      chain.push_back(name);
    }
  }

  // One independent fit per uid — the embarrassingly parallel half of
  // the paper's design. Each task owns its learner instance and writes
  // into a preallocated slot, so the resulting bank is bit-identical
  // regardless of the thread count. A fit failure stays inside its task
  // (degrading through the chain) instead of riding the parallel_for
  // exception path out of the whole bank.
  std::vector<std::pair<int, const std::vector<const bench::Record*>*>>
      tasks;
  tasks.reserve(rows.size());
  for (const auto& [uid, recs] : rows) tasks.emplace_back(uid, &recs);

  const std::size_t dim = feature_dim(options_.features);
  std::vector<std::unique_ptr<ml::Regressor>> fitted(tasks.size());
  std::vector<FitOutcome> outcomes(tasks.size());
  support::parallel_for(tasks.size(), 1, [&](std::size_t t) {
    MPICP_SPAN("fit.uid");
    const int uid = tasks[t].first;
    const auto& recs = *tasks[t].second;
    FitOutcome& outcome = outcomes[t];
    outcome.uid = uid;
    outcome.rows_total = recs.size();

    // Screen the rows no learner accepts (corrupt in-memory datasets:
    // NaN / negative / zero timings) before they poison a fit.
    std::vector<const bench::Record*> valid;
    valid.reserve(recs.size());
    for (const bench::Record* rec : recs) {
      if (std::isfinite(rec->time_us) && rec->time_us > 0.0) {
        valid.push_back(rec);
      }
    }
    outcome.rows_dropped = recs.size() - valid.size();
    if (valid.empty()) {
      outcome.error = "no valid training rows";
      return;
    }

    ml::Matrix x(valid.size(), dim);
    // mpicp-lint: allow(no-alloc-in-loop) per-uid training buffers; the
    // allocation is amortized by the fit it feeds.
    std::vector<double> y(valid.size());
    for (std::size_t i = 0; i < valid.size(); ++i) {
      instance_features_into(
          {valid[i]->nodes, valid[i]->ppn, valid[i]->msize},
          options_.features, x.row(i));
      y[i] = valid[i]->time_us;
    }
    for (std::size_t level = 0; level < chain.size(); ++level) {
      try {
        if (support::faultinject::consume_fit_failure(uid)) {
          MPICP_RAISE_ERROR("fault injection: forced fit failure");
        }
        auto model = ml::make_regressor(chain[level]);
        const auto t0 = std::chrono::steady_clock::now();
        model->fit(x, y);
        const auto dt = std::chrono::steady_clock::now() - t0;
        metrics::histogram("fit.time_us." + chain[level])
            .observe(std::chrono::duration<double, std::micro>(dt).count());
        fitted[t] = std::move(model);
        outcome.learner = chain[level];
        outcome.fallback_depth = static_cast<int>(level);
        return;
      } catch (const std::exception& e) {
        if (outcome.error.empty()) outcome.error = e.what();
      }
    }
    // Whole chain failed: the uid stays out of the bank, recorded above.
  });
  report_.outcomes.reserve(tasks.size());
  for (std::size_t t = 0; t < tasks.size(); ++t) {
    report_.outcomes.push_back(std::move(outcomes[t]));
    if (fitted[t]) {
      models_.emplace(tasks[t].first, std::move(fitted[t]));
    }
  }
  // The registry mirrors the FitReport exactly (the golden test pins
  // this reconciliation), accumulated once on the calling thread so the
  // totals are independent of the thread count.
  metrics::counter("fit.calls").inc();
  metrics::counter("fit.uids_total").inc(report_.uids_total());
  metrics::counter("fit.uids_clean").inc(report_.uids_clean());
  metrics::counter("fit.uids_fallback").inc(report_.uids_fallback());
  metrics::counter("fit.uids_unusable").inc(report_.uids_unusable());
  metrics::counter("fit.rows_dropped").inc(report_.rows_dropped());
  for (const FitOutcome& o : report_.outcomes) {
    if (o.usable()) {
      metrics::histogram("fit.fallback_depth").observe(o.fallback_depth);
    }
  }
  MPICP_REQUIRE(!models_.empty(),
                "no uid could be fitted by any learner in the chain");
  return report_;
}

double Selector::predicted_time_us(int uid,
                                   const bench::Instance& inst) const {
  const auto it = models_.find(uid);
  MPICP_REQUIRE(it != models_.end(),
                "no model for uid " + std::to_string(uid));
  return it->second->predict_one(
      instance_features(inst, options_.features));
}

std::vector<Selector::Prediction> Selector::predict_all(
    const bench::Instance& inst) const {
  MPICP_SPAN("selector.predict_all");
  MPICP_REQUIRE(!models_.empty(), "selector has not been fitted");
  metrics::counter("predict.calls").inc();
  metrics::counter("predict.predictions_served").inc(models_.size());
  const auto feat = instance_features(inst, options_.features);
  std::vector<Prediction> out;
  std::vector<const ml::Regressor*> bank;
  out.reserve(models_.size());
  bank.reserve(models_.size());
  for (const auto& [uid, model] : models_) {
    out.push_back({uid, 0.0, true});
    bank.push_back(model.get());
  }
  // Single predictions are cheap; chunk so the pool is only engaged for
  // banks large enough to amortize the dispatch.
  support::parallel_for(bank.size(), 16, [&](std::size_t i) {
    double t = bank[i]->predict_one(feat);
    if (support::faultinject::active()) {
      if (const auto forced =
              support::faultinject::forced_prediction(out[i].uid)) {
        t = *forced;
      }
    }
    out[i].time_us = t;
    out[i].usable = std::isfinite(t) && t >= 0.0;
  });
  return out;
}

namespace {

/// Argmin over the usable predictions; -1 when none is usable. Scans in
/// ascending uid order so ties break identically at every thread count.
/// Unusable predictions (NaN/inf/negative) never win the argmin —
/// comparing against them would poison the result.
int argmin_usable(const std::vector<Selector::Prediction>& predictions) {
  int best_uid = -1;
  double best_time = 0.0;
  std::size_t excluded = 0;
  for (const Selector::Prediction& p : predictions) {
    if (!p.usable) {
      ++excluded;
      continue;
    }
    if (best_uid < 0 || p.time_us < best_time) {
      best_uid = p.uid;
      best_time = p.time_us;
    }
  }
  if (excluded > 0) {
    metrics::counter("select.argmin_excluded").inc(excluded);
  }
  return best_uid;
}

}  // namespace

int Selector::select_uid(const bench::Instance& inst) const {
  metrics::counter("select.requests").inc();
  const int best_uid = argmin_usable(predict_all(inst));
  MPICP_REQUIRE(best_uid > 0,
                "no usable model prediction for the instance (use "
                "select_uid_or_default for graceful degradation)");
  return best_uid;
}

int Selector::select_uid_or_default(const bench::Instance& inst,
                                    sim::MpiLib lib,
                                    sim::Collective coll) const {
  metrics::counter("select.requests").inc();
  if (!models_.empty()) {
    const int best_uid = argmin_usable(predict_all(inst));
    if (best_uid > 0) return best_uid;
  }
  // No usable model: behave like an untuned library run.
  metrics::counter("select.default_fallbacks").inc();
  return sim::library_default_uid(lib, coll, inst.nodes * inst.ppn,
                                  inst.msize);
}

void Selector::save(const std::filesystem::path& path) const {
  MPICP_REQUIRE(!models_.empty(), "saving an unfitted selector");
  if (path.has_parent_path()) {
    std::filesystem::create_directories(path.parent_path());
  }
  std::ofstream os(path);
  if (!os) MPICP_RAISE_ERROR("cannot open " + path.string() + " for writing");
  os << "mpicp-selector 1\n";
  os << options_.learner << '\n';
  os << (options_.features.include_total_processes ? 1 : 0) << '\n';
  os << models_.size() << '\n';
  for (const auto& [uid, model] : models_) {
    os << uid << '\n';
    ml::save_regressor(os, *model);
  }
  if (!os) MPICP_RAISE_ERROR("failed writing selector to " + path.string());
}

Selector Selector::load(const std::filesystem::path& path) {
  std::ifstream is(path);
  if (!is) MPICP_RAISE_PARSE("cannot open selector file " + path.string());
  ml::io::expect_tag(is, "mpicp-selector");
  const int version = ml::io::read_value<int>(is);
  MPICP_CHECK_PARSE(version == 1, "unsupported selector file version");
  SelectorOptions options;
  is >> options.learner;
  options.features.include_total_processes =
      ml::io::read_value<int>(is) != 0;
  Selector selector(options);
  const auto count = ml::io::read_value<std::size_t>(is);
  MPICP_CHECK_PARSE(count >= 1 && count < 100000,
                    "implausible selector model count");
  for (std::size_t i = 0; i < count; ++i) {
    const int uid = ml::io::read_value<int>(is);
    selector.models_.emplace(uid, ml::load_regressor(is));
  }
  return selector;
}

std::vector<int> Selector::uids() const {
  std::vector<int> out;
  out.reserve(models_.size());
  for (const auto& [uid, model] : models_) out.push_back(uid);
  return out;
}

CompiledBank Selector::compile() const {
  MPICP_SPAN("selector.compile");
  MPICP_REQUIRE(!models_.empty(), "compiling an unfitted selector");
  CompiledBank bank;
  bank.features_ = options_.features;
  bank.uids_.reserve(models_.size());
  for (const auto& [uid, model] : models_) {
    bank.uids_.push_back(uid);
    bank.bank_.add(*model);
  }
  metrics::counter("compiled.compile.calls").inc();
  metrics::counter("compiled.compile.models").inc(models_.size());
  return bank;
}

RuleDistillation Selector::distill(std::span<const bench::Instance> grid,
                                   RuleParams params) const {
  MPICP_SPAN("selector.distill");
  return tune::distill(compile(), grid, params);
}

}  // namespace mpicp::tune
