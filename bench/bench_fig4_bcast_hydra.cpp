// Figure 4 — comparison of the algorithm selection strategies for
// MPI_Bcast; Open MPI (modeled), Hydra; GAM predictor.
//
// Paper shape: the prediction tracks the exhaustive best closely and
// clearly outperforms the Open MPI default for many (ppn, msize) cells
// (default up to several x slower).
#include "bench_common.hpp"

int main() {
  std::printf("Figure 4: MPI_Bcast, Open MPI (modeled), Hydra (d1)\n");
  mpicp::benchharness::print_strategy_comparison("d1", "gam", {27, 35},
                                                 {1, 16, 32});
  return 0;
}
