file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_allreduce_intel.dir/bench_fig6_allreduce_intel.cpp.o"
  "CMakeFiles/bench_fig6_allreduce_intel.dir/bench_fig6_allreduce_intel.cpp.o.d"
  "bench_fig6_allreduce_intel"
  "bench_fig6_allreduce_intel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_allreduce_intel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
