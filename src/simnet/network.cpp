#include "simnet/network.hpp"

#include <algorithm>

#include "support/error.hpp"

namespace mpicp::sim {

Network::Network(const MachineDesc& desc, int nodes, int ppn,
                 Placement placement)
    : desc_(desc), nodes_(nodes), ppn_(ppn), placement_(placement) {
  MPICP_REQUIRE(nodes >= 1 && nodes <= desc.max_nodes,
                "node count outside machine limits");
  MPICP_REQUIRE(ppn >= 1 && ppn <= desc.max_ppn,
                "ppn outside machine limits");
  MPICP_REQUIRE(desc.rails >= 1 && desc.mem_channels >= 1,
                "machine must have at least one rail and one channel");
  rail_avail_.assign(static_cast<std::size_t>(nodes) * desc.rails, 0.0);
  mem_avail_.assign(static_cast<std::size_t>(nodes) * desc.mem_channels,
                    0.0);
}

void Network::reset() {
  std::fill(rail_avail_.begin(), rail_avail_.end(), 0.0);
  std::fill(mem_avail_.begin(), mem_avail_.end(), 0.0);
}

double& Network::pick_earliest(std::vector<double>& pool, int node) {
  const std::size_t width = pool.size() / static_cast<std::size_t>(nodes_);
  const std::size_t base = static_cast<std::size_t>(node) * width;
  std::size_t best = base;
  for (std::size_t i = base + 1; i < base + width; ++i) {
    if (pool[i] < pool[best]) best = i;
  }
  return pool[best];
}

Transfer Network::schedule_transfer(int src, int dst, std::size_t bytes,
                                    double ready_us) {
  MPICP_ASSERT(src >= 0 && src < num_ranks() && dst >= 0 &&
                   dst < num_ranks(),
               "transfer endpoints out of range");
  Transfer t;
  if (src == dst) {
    // Local self-copy: costs one memcpy, no shared resource contention.
    t.start_us = ready_us;
    t.arrival_us = ready_us + desc_.intra.occupancy_us(bytes);
    return t;
  }
  if (same_node(src, dst)) {
    double& chan = pick_earliest(mem_avail_, node_of(src));
    t.start_us = std::max(ready_us, chan);
    const double occ = desc_.intra.occupancy_us(bytes);
    chan = t.start_us + occ;
    t.arrival_us = t.start_us + occ + desc_.intra.latency_us;
    return t;
  }
  double& src_rail = pick_earliest(rail_avail_, node_of(src));
  double& dst_rail = pick_earliest(rail_avail_, node_of(dst));
  t.start_us = std::max({ready_us, src_rail, dst_rail});
  const double occ = desc_.inter.occupancy_us(bytes);
  src_rail = t.start_us + occ;
  dst_rail = t.start_us + occ;
  t.arrival_us = t.start_us + occ + desc_.inter.latency_us;
  return t;
}

}  // namespace mpicp::sim
