file(REMOVE_RECURSE
  "CMakeFiles/mpicp_support.dir/cli.cpp.o"
  "CMakeFiles/mpicp_support.dir/cli.cpp.o.d"
  "CMakeFiles/mpicp_support.dir/csv.cpp.o"
  "CMakeFiles/mpicp_support.dir/csv.cpp.o.d"
  "CMakeFiles/mpicp_support.dir/rng.cpp.o"
  "CMakeFiles/mpicp_support.dir/rng.cpp.o.d"
  "CMakeFiles/mpicp_support.dir/stats.cpp.o"
  "CMakeFiles/mpicp_support.dir/stats.cpp.o.d"
  "CMakeFiles/mpicp_support.dir/str.cpp.o"
  "CMakeFiles/mpicp_support.dir/str.cpp.o.d"
  "CMakeFiles/mpicp_support.dir/table.cpp.o"
  "CMakeFiles/mpicp_support.dir/table.cpp.o.d"
  "libmpicp_support.a"
  "libmpicp_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpicp_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
