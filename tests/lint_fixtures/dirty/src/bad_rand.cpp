// Fixture: violates no-raw-rand (R1).
#include <cstdlib>
#include <random>

int fixture_rand() {
  std::mt19937 gen(42);
  std::random_device rd;
  return static_cast<int>(gen()) + static_cast<int>(rd()) + rand();
}
