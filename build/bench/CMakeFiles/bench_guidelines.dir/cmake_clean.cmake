file(REMOVE_RECURSE
  "CMakeFiles/bench_guidelines.dir/bench_guidelines.cpp.o"
  "CMakeFiles/bench_guidelines.dir/bench_guidelines.cpp.o.d"
  "bench_guidelines"
  "bench_guidelines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_guidelines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
