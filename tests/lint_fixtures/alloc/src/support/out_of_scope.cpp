// Fixture: the same allocation patterns outside src/ml and src/tune —
// R9 is scoped to the hot fit/predict paths only.
#include <cstddef>
#include <vector>

void unscoped(std::vector<int>& out, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) out.push_back(static_cast<int>(i));
}
