#include "ml/gam.hpp"

#include <algorithm>
#include <cmath>

#include "ml/io.hpp"
#include "support/error.hpp"

namespace mpicp::ml {

GamRegressor::GamRegressor(GamParams params) : params_(params) {
  MPICP_REQUIRE(params_.basis_per_feature >= 4, "basis too small");
  MPICP_REQUIRE(params_.lambda >= 0.0, "negative smoothing penalty");
}

Matrix GamRegressor::design_row(std::span<const double> x) const {
  const int nb = params_.basis_per_feature;
  Matrix row(1, 1 + x.size() * static_cast<std::size_t>(nb));
  row(0, 0) = 1.0;
  for (std::size_t f = 0; f < x.size(); ++f) {
    const auto b = bases_[f].evaluate(x[f]);
    for (int j = 0; j < nb; ++j) row(0, 1 + f * nb + j) = b[j];
  }
  return row;
}

void GamRegressor::fit(const Matrix& x, std::span<const double> y) {
  MPICP_REQUIRE(x.rows() == y.size() && !y.empty(),
                "training data shape mismatch");
  for (const double v : y) {
    MPICP_REQUIRE(v > 0.0, "Gamma family needs positive targets");
  }
  const std::size_t n = x.rows();
  const std::size_t d = x.cols();
  const int nb = params_.basis_per_feature;

  // Build one basis per feature over the observed range.
  bases_.clear();
  bases_.reserve(d);
  for (std::size_t f = 0; f < d; ++f) {
    double lo = x(0, f);
    double hi = x(0, f);
    for (std::size_t i = 1; i < n; ++i) {
      lo = std::min(lo, x(i, f));
      hi = std::max(hi, x(i, f));
    }
    if (hi <= lo) hi = lo + 1.0;  // constant feature: harmless basis
    bases_.emplace_back(lo, hi, nb);
  }

  // Full design matrix [1 | B_1 | ... | B_d].
  const std::size_t cols = 1 + d * static_cast<std::size_t>(nb);
  Matrix design(n, cols);
  for (std::size_t i = 0; i < n; ++i) {
    const Matrix row = design_row(x.row(i));
    std::copy(row.row(0).begin(), row.row(0).end(), design.row(i).begin());
  }

  // Penalized normal matrix: X'X + lambda * blockdiag(S_f) (+ a whiff of
  // ridge for identifiability of the overlapping constant directions).
  Matrix normal = design.gram();
  for (std::size_t f = 0; f < d; ++f) {
    const Matrix pen = bases_[f].penalty();
    for (int a = 0; a < nb; ++a) {
      for (int b = 0; b < nb; ++b) {
        normal(1 + f * nb + a, 1 + f * nb + b) +=
            params_.lambda * pen(a, b);
      }
    }
  }
  for (std::size_t c = 0; c < cols; ++c) normal(c, c) += 1e-8;

  // Penalized IRLS. Gamma + log link has unit IRLS weights, so the
  // normal matrix is iteration-invariant; only the working response z =
  // eta + (y - mu)/mu changes.
  std::vector<double> eta(n);
  for (std::size_t i = 0; i < n; ++i) eta[i] = std::log(y[i]);
  beta_.assign(cols, 0.0);
  iterations_ = 0;
  double prev_dev = 1e300;
  std::vector<double> z(n);
  for (int it = 0; it < params_.max_iters; ++it) {
    ++iterations_;
    for (std::size_t i = 0; i < n; ++i) {
      const double mu = std::exp(std::clamp(eta[i], -40.0, 40.0));
      z[i] = eta[i] + (y[i] - mu) / mu;
    }
    beta_ = cholesky_solve(normal, design.transpose_times(z));
    eta = design.times(beta_);
    // Gamma deviance for convergence monitoring.
    double dev = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const double mu = std::exp(std::clamp(eta[i], -40.0, 40.0));
      dev += 2.0 * (-std::log(y[i] / mu) + (y[i] - mu) / mu);
    }
    if (std::abs(prev_dev - dev) <
        params_.tol * (std::abs(dev) + params_.tol)) {
      break;
    }
    prev_dev = dev;
  }
}

void GamRegressor::save(std::ostream& os) const {
  io::write_tag(os, "gam");
  io::write_value(os, params_.basis_per_feature);
  io::write_value(os, bases_.size());
  for (const BSplineBasis& basis : bases_) {
    io::write_value(os, basis.lo());
    io::write_value(os, basis.hi());
  }
  io::write_vector(os, beta_);
}

void GamRegressor::load(std::istream& is) {
  io::expect_tag(is, "gam");
  params_.basis_per_feature = io::read_value<int>(is);
  const auto d = io::read_value<std::size_t>(is);
  MPICP_REQUIRE(d < 256, "implausible gam dimensionality");
  bases_.clear();
  for (std::size_t f = 0; f < d; ++f) {
    const auto lo = io::read_value<double>(is);
    const auto hi = io::read_value<double>(is);
    bases_.emplace_back(lo, hi, params_.basis_per_feature);
  }
  beta_ = io::read_vector<double>(is);
  MPICP_REQUIRE(
      beta_.size() ==
          1 + d * static_cast<std::size_t>(params_.basis_per_feature),
      "gam model size mismatch");
}

double GamRegressor::predict_one(std::span<const double> x) const {
  MPICP_REQUIRE(!beta_.empty(), "predicting with an unfitted model");
  const Matrix row = design_row(x);
  double eta = 0.0;
  for (std::size_t c = 0; c < row.cols(); ++c) {
    eta += row(0, c) * beta_[c];
  }
  return std::exp(std::clamp(eta, -40.0, 40.0));
}

}  // namespace mpicp::ml
