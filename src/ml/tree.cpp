#include "ml/tree.hpp"

#include <algorithm>
#include <cmath>

#include "ml/io.hpp"
#include "support/error.hpp"

namespace mpicp::ml {

FeatureBinner::FeatureBinner(const Matrix& x, int max_bins) {
  MPICP_REQUIRE(max_bins >= 2 && max_bins <= 256, "unsupported bin count");
  const std::size_t n = x.rows();
  const std::size_t d = x.cols();
  MPICP_REQUIRE(n >= 1, "cannot bin an empty matrix");
  edges_.resize(d);
  std::vector<double> col(n);
  for (std::size_t f = 0; f < d; ++f) {
    for (std::size_t i = 0; i < n; ++i) col[i] = x(i, f);
    std::sort(col.begin(), col.end());
    col.erase(std::unique(col.begin(), col.end()), col.end());
    std::vector<double>& e = edges_[f];
    if (static_cast<int>(col.size()) <= max_bins) {
      // Lossless: one bin per distinct value, edges at midpoints.
      e.reserve(col.size() - 1);
      for (std::size_t i = 0; i + 1 < col.size(); ++i) {
        e.push_back(0.5 * (col[i] + col[i + 1]));
      }
    } else {
      // Quantile edges.
      e.reserve(static_cast<std::size_t>(max_bins) - 1);
      for (int b = 1; b < max_bins; ++b) {
        const std::size_t pos =
            b * (col.size() - 1) / static_cast<std::size_t>(max_bins);
        const double edge = 0.5 * (col[pos] + col[pos + 1]);
        if (e.empty() || edge > e.back()) e.push_back(edge);
      }
    }
  }
}

std::uint8_t FeatureBinner::bin_of(int f, double value) const {
  const auto& e = edges_[f];
  const auto it = std::upper_bound(e.begin(), e.end(), value);
  return static_cast<std::uint8_t>(it - e.begin());
}

std::vector<std::uint8_t> FeatureBinner::encode(const Matrix& x) const {
  MPICP_REQUIRE(static_cast<int>(x.cols()) == num_features(),
                "feature count mismatch");
  std::vector<std::uint8_t> codes(x.rows() * x.cols());
  for (std::size_t i = 0; i < x.rows(); ++i) {
    for (std::size_t f = 0; f < x.cols(); ++f) {
      codes[i * x.cols() + f] = bin_of(static_cast<int>(f), x(i, f));
    }
  }
  return codes;
}

void RegressionTree::fit(const FeatureBinner& binner,
                         std::span<const std::uint8_t> codes,
                         int num_features, std::span<const GradPair> gh,
                         std::vector<int> rows, const TreeParams& params) {
  std::vector<GradPair> hist_scratch;
  fit(binner, codes, num_features, gh, std::move(rows), params,
      hist_scratch);
}

void RegressionTree::fit(const FeatureBinner& binner,
                         std::span<const std::uint8_t> codes,
                         int num_features, std::span<const GradPair> gh,
                         std::vector<int> rows, const TreeParams& params,
                         std::vector<GradPair>& hist_scratch) {
  MPICP_REQUIRE(!rows.empty(), "cannot fit a tree on zero rows");
  nodes_.clear();
  build(binner, codes, num_features, gh, std::move(rows), 0, params,
        hist_scratch);
}

int RegressionTree::build(const FeatureBinner& binner,
                          std::span<const std::uint8_t> codes,
                          int num_features, std::span<const GradPair> gh,
                          std::vector<int> rows, int depth,
                          const TreeParams& params,
                          std::vector<GradPair>& hist) {
  double g_sum = 0.0;
  double h_sum = 0.0;
  for (const int i : rows) {
    g_sum += gh[i].g;
    h_sum += gh[i].h;
  }
  const int node_idx = static_cast<int>(nodes_.size());
  nodes_.emplace_back();
  nodes_[node_idx].value =
      params.learning_rate * (-g_sum / (h_sum + params.lambda));

  if (depth >= params.max_depth || rows.size() < 2) return node_idx;

  // Histogram split search.
  const double parent_score = g_sum * g_sum / (h_sum + params.lambda);
  int best_feature = -1;
  int best_bin = -1;
  double best_gain = params.min_gain;
  // `hist` is the fit-wide scratch buffer: assign() below reuses its
  // capacity, so the whole tree (and ensemble) shares one allocation.
  for (int f = 0; f < num_features; ++f) {
    const int nbins = binner.num_bins(f);
    if (nbins < 2) continue;
    hist.assign(nbins, GradPair{});
    for (const int i : rows) {
      const std::uint8_t b = codes[static_cast<std::size_t>(i) *
                                       num_features +
                                   f];
      hist[b].g += gh[i].g;
      hist[b].h += gh[i].h;
    }
    double gl = 0.0;
    double hl = 0.0;
    for (int b = 0; b + 1 < nbins; ++b) {
      gl += hist[b].g;
      hl += hist[b].h;
      const double hr = h_sum - hl;
      if (hl < params.min_child_weight || hr < params.min_child_weight) {
        continue;
      }
      const double gr = g_sum - gl;
      const double gain = gl * gl / (hl + params.lambda) +
                          gr * gr / (hr + params.lambda) - parent_score;
      if (gain > best_gain) {
        best_gain = gain;
        best_feature = f;
        best_bin = b;
      }
    }
  }
  if (best_feature < 0) return node_idx;

  std::vector<int> left_rows;
  std::vector<int> right_rows;
  for (const int i : rows) {
    const std::uint8_t b =
        codes[static_cast<std::size_t>(i) * num_features + best_feature];
    (b <= best_bin ? left_rows : right_rows).push_back(i);
  }
  rows.clear();
  rows.shrink_to_fit();

  nodes_[node_idx].feature = best_feature;
  nodes_[node_idx].threshold = binner.edge(best_feature, best_bin);
  nodes_[node_idx].gain = best_gain;
  const int left = build(binner, codes, num_features, gh,
                         std::move(left_rows), depth + 1, params, hist);
  const int right = build(binner, codes, num_features, gh,
                          std::move(right_rows), depth + 1, params, hist);
  nodes_[node_idx].left = left;
  nodes_[node_idx].right = right;
  return node_idx;
}

double RegressionTree::predict_one(std::span<const double> x) const {
  MPICP_ASSERT(!nodes_.empty(), "predicting with an unfitted tree");
  int cur = 0;
  while (nodes_[cur].feature >= 0) {
    cur = x[nodes_[cur].feature] < nodes_[cur].threshold
              ? nodes_[cur].left
              : nodes_[cur].right;
  }
  return nodes_[cur].value;
}

void RegressionTree::accumulate_gains(std::span<double> gains) const {
  for (const Node& node : nodes_) {
    if (node.feature >= 0 &&
        node.feature < static_cast<int>(gains.size())) {
      gains[node.feature] += node.gain;
    }
  }
}

void RegressionTree::save(std::ostream& os) const {
  io::write_tag(os, "tree");
  io::write_value(os, nodes_.size());
  for (const Node& n : nodes_) {
    io::write_value(os, n.feature);
    io::write_value(os, n.threshold);
    io::write_value(os, n.left);
    io::write_value(os, n.right);
    io::write_value(os, n.value);
    io::write_value(os, n.gain);
  }
}

void RegressionTree::load(std::istream& is) {
  io::expect_tag(is, "tree");
  const auto count = io::read_value<std::size_t>(is);
  MPICP_REQUIRE(count < (1u << 26), "implausible tree size");
  nodes_.assign(count, Node{});
  for (Node& n : nodes_) {
    n.feature = io::read_value<int>(is);
    n.threshold = io::read_value<double>(is);
    n.left = io::read_value<int>(is);
    n.right = io::read_value<int>(is);
    n.value = io::read_value<double>(is);
    n.gain = io::read_value<double>(is);
  }
}

int RegressionTree::depth() const {
  // Depth via recomputation (nodes are in preorder).
  std::vector<int> depth_of(nodes_.size(), 0);
  int max_depth = 0;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i].feature >= 0) {
      depth_of[nodes_[i].left] = depth_of[i] + 1;
      depth_of[nodes_[i].right] = depth_of[i] + 1;
      max_depth = std::max(max_depth, depth_of[i] + 1);
    }
  }
  return max_depth;
}

}  // namespace mpicp::ml
