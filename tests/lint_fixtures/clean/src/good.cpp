// Fixture: clean translation unit — nothing for mpicp_lint to flag.
#include <cmath>

double fixture_good(double x) {
  return std::sqrt(x) + 1.0;
}
