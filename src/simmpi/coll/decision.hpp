// The Open-MPI-style hard-coded default decision logic.
//
// Open MPI's coll_tuned component selects algorithms through fixed
// decision functions whose thresholds were fitted on the authors'
// machines years ago (Pjesivac-Grbovic et al.). This module models that
// baseline: simple message-size / communicator-size threshold rules that
// are *plausible everywhere and optimal nowhere*, which is exactly the
// premise of the paper's evaluation (the "Default" strategy).
//
// The Intel-MPI-style default (a factory-tuned lookup table) lives in
// collbench/tuned_table.hpp because it is built from benchmark data.
#pragma once

#include <cstddef>

#include "simmpi/coll/registry.hpp"
#include "simmpi/coll/types.hpp"

namespace mpicp::sim {

/// The uid (within the Open MPI registry) that Open MPI's fixed decision
/// rules would select for an instance with p processes and message size
/// m_bytes.
int openmpi_default_uid(Collective coll, int p, std::size_t m_bytes);

/// Library-agnostic entry point: the uid the library itself would fall
/// back to without any tuning input. For Open MPI this is the fixed
/// decision logic above; for Intel MPI (whose real default is a
/// factory-tuned table needing benchmark data) it is a static
/// threshold-rule analogue over the Intel registry. This is the
/// degradation target when the prediction pipeline has no usable model
/// for an instance — always returns a valid uid for (lib, coll).
int library_default_uid(MpiLib lib, Collective coll, int p,
                        std::size_t m_bytes);

}  // namespace mpicp::sim
