// Fixture: an unknown rule id inside allow(...) is itself a finding.
void fixture_unknown() {
  // mpicp-lint: allow(not-a-rule)
}
