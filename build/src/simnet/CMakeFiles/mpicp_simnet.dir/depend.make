# Empty dependencies file for mpicp_simnet.
# This may be replaced when dependencies are built.
