// Process-wide metrics registry (counters, gauges, histograms).
//
// The pipeline's health reports (bench::IngestReport, tune::FitReport)
// account for one call; this registry accumulates the same quantities —
// rows quarantined, fallback depths, argmin exclusions, predictions
// served, per-learner fit times — across a whole process, so operators
// and benches can see where a run spent its budget and how often the
// degradation paths fired. Metric values are updated with relaxed
// atomics from inside parallel_for bodies; registration takes a mutex
// once per name, and instruments are never deallocated (reset() zeroes
// values in place), so cached references stay valid for the process
// lifetime.
//
// Exporters: print_metrics renders an aligned table (support/table);
// write_json emits the machine-readable snapshot (`metrics.json`) the
// benches and the golden tests consume. See README "Observability".
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "support/thread_safety.hpp"

namespace mpicp::support::metrics {

/// Monotonically increasing event count.
class Counter {
 public:
  void inc(std::uint64_t n = 1) {
    // order: independent statistic; readers only need eventual totals.
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const {
    // order: independent statistic; readers only need eventual totals.
    return value_.load(std::memory_order_relaxed);
  }
  void reset() {
    // order: independent statistic; readers only need eventual totals.
    value_.store(0, std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-write-wins scalar (e.g. a configuration value or a level).
class Gauge {
 public:
  void set(double v) {
    // order: last-write-wins scalar; no ordering with other data.
    value_.store(v, std::memory_order_relaxed);
  }
  double value() const {
    // order: last-write-wins scalar; no ordering with other data.
    return value_.load(std::memory_order_relaxed);
  }
  void reset() {
    // order: last-write-wins scalar; no ordering with other data.
    value_.store(0.0, std::memory_order_relaxed);
  }

 private:
  std::atomic<double> value_{0.0};
};

/// Distribution of observed values: exact count/sum/min/max plus
/// power-of-two buckets (bucket b counts values in (2^(b-1), 2^b]).
/// Values <= 0 land in the first bucket. All updates are lock-free, so
/// observe() is safe from parallel_for bodies.
class Histogram {
 public:
  static constexpr std::size_t kBuckets = 64;

  void observe(double v);

  struct Summary {
    std::uint64_t count = 0;
    double sum = 0.0;
    double min = 0.0;  ///< meaningless when count == 0
    double max = 0.0;
    double mean() const {
      return count == 0 ? 0.0 : sum / static_cast<double>(count);
    }
    /// Non-empty buckets as (upper bound, count), ascending.
    std::vector<std::pair<double, std::uint64_t>> buckets;
  };
  Summary summary() const;

  std::uint64_t count() const {
    // order: independent statistic; readers only need eventual totals.
    return count_.load(std::memory_order_relaxed);
  }
  void reset();

 private:
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  // +/-inf sentinels so the first observe() seeds the bounds through
  // the same CAS path as every later one; summary() maps the empty
  // histogram back to 0.
  std::atomic<double> min_{std::numeric_limits<double>::infinity()};
  std::atomic<double> max_{-std::numeric_limits<double>::infinity()};
  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
};

/// Point-in-time copy of every registered metric.
struct Snapshot {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, Histogram::Summary> histograms;
};

/// The process-wide name -> instrument map. Lookup registers on first
/// use and returns a stable reference; hot paths should cache it.
class Registry {
 public:
  static Registry& instance();

  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name);

  Snapshot snapshot() const;

  /// Zero every registered metric in place. References handed out
  /// before the reset stay valid (tests and repeated bench reps rely
  /// on this).
  void reset();

 private:
  Registry() = default;

  mutable Mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_
      MPICP_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_
      MPICP_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>>
      histograms_ MPICP_GUARDED_BY(mu_);
};

/// Convenience accessors into Registry::instance().
Counter& counter(std::string_view name);
Gauge& gauge(std::string_view name);
Histogram& histogram(std::string_view name);

/// Render a snapshot as aligned human-readable tables.
void print_metrics(std::ostream& os, const Snapshot& snapshot);

/// Emit a snapshot as JSON:
///   {"counters": {name: int, ...},
///    "gauges": {name: float, ...},
///    "histograms": {name: {"count": int, "sum": float, "min": float,
///                          "max": float, "mean": float,
///                          "buckets": [{"le": float, "count": int}]}}}
/// Non-finite values are emitted as null so the output always parses.
void write_json(std::ostream& os, const Snapshot& snapshot);

}  // namespace mpicp::support::metrics
