#include "tune/stream.hpp"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <utility>

#include "support/error.hpp"
#include "support/metrics.hpp"
#include "support/str.hpp"
#include "support/trace.hpp"

namespace mpicp::tune {

namespace metrics = support::metrics;

namespace {

/// Holdout rows whose uid the bank cannot predict score this relative
/// error — large enough that a bank missing live algorithms always
/// loses to one that serves them.
constexpr double kUnusablePenalty = 10.0;

constexpr std::size_t kStreamColumns = 5;  // uid,nodes,ppn,msize,time_us

}  // namespace

StreamPipeline::StreamPipeline(BankRegistry& registry,
                               StreamOptions options)
    : registry_(registry), options_(std::move(options)) {
  MPICP_REQUIRE(options_.window_capacity > 0,
                "window_capacity must be positive");
  MPICP_REQUIRE(options_.min_refit_rows > 0,
                "min_refit_rows must be positive");
  MPICP_REQUIRE(options_.holdout_every >= 2,
                "holdout_every must be >= 2 (every row in the holdout "
                "would leave nothing to train on)");
  MPICP_REQUIRE(options_.accept_tolerance > 0.0,
                "accept_tolerance must be positive");
  MPICP_REQUIRE(options_.backoff_multiplier >= 1.0,
                "backoff_multiplier must be >= 1");
}

StreamPipeline::RowOutcome StreamPipeline::push_row(
    const BankKey& key, const std::string& row_text) {
  // Blank rows (e.g. a dropped-row fault) are not rows at all — the
  // file-ingest path skips blank lines without accounting, so do we.
  const std::string_view trimmed = support::trim(row_text);
  if (trimmed.empty()) return {};

  const std::vector<std::string> cells = support::split(trimmed, ',');
  bench::Record rec;
  std::string reason;
  if (cells.size() != kStreamColumns) {
    reason = "row width mismatch";  // read_csv_lenient's structural reason
  } else {
    try {
      rec.uid = static_cast<int>(support::parse_int(cells[0]));
      rec.nodes = static_cast<int>(support::parse_int(cells[1]));
      rec.ppn = static_cast<int>(support::parse_int(cells[2]));
      rec.msize = static_cast<std::uint64_t>(support::parse_int(cells[3]));
      rec.time_us = support::parse_double(cells[4]);
    } catch (const ParseError&) {
      reason = "unparseable field";
    }
  }
  if (!reason.empty()) {
    static metrics::Counter& seen = metrics::counter("stream.rows_seen");
    static metrics::Counter& quarantined =
        metrics::counter("stream.rows_quarantined");
    const support::MutexLock lock(mu_);
    ++stats_.rows_seen;
    seen.inc();
    ++stats_.rows_quarantined;
    quarantined.inc();
    ++stats_.quarantine_reasons[reason];
    metrics::counter("stream.quarantine." + reason).inc();
    RowOutcome out;
    out.quarantine_reason = reason;
    return out;
  }
  return push(key, rec);
}

StreamPipeline::RowOutcome StreamPipeline::push(const BankKey& key,
                                                const bench::Record& rec) {
  const support::MutexLock lock(mu_);
  return push_locked(key, rec);
}

StreamPipeline::RowOutcome StreamPipeline::push_locked(
    const BankKey& key, const bench::Record& rec) {
  MPICP_SPAN("stream.push");
  static metrics::Counter& seen = metrics::counter("stream.rows_seen");
  static metrics::Counter& quarantined =
      metrics::counter("stream.rows_quarantined");

  RowOutcome out;
  ++stats_.rows_seen;
  seen.inc();

  // The same semantic screen as Dataset::load_csv_tolerant — a
  // corrupted value never reaches the window, the detector or a refit.
  const std::string reason = bench::validate_record(rec, options_.ingest);
  if (!reason.empty()) {
    ++stats_.rows_quarantined;
    quarantined.inc();
    ++stats_.quarantine_reasons[reason];
    metrics::counter("stream.quarantine." + reason).inc();
    out.quarantine_reason = reason;
    return out;
  }

  KeyState& state = states_[key];
  ingest(state, rec);
  out.ingested = true;

  observe_error(state, key, rec, &out);
  maybe_refit(state, key, &out);
  return out;
}

void StreamPipeline::ingest(KeyState& state, const bench::Record& rec) {
  static metrics::Counter& ingested =
      metrics::counter("stream.rows_ingested");
  static metrics::Counter& evictions =
      metrics::counter("stream.window_evictions");
  ++stats_.rows_ingested;
  ingested.inc();
  ++state.accepted;
  if (state.accepted % options_.holdout_every == 0) {
    state.holdout.push_back(rec);
    const std::size_t cap = std::max<std::size_t>(
        1, options_.window_capacity / options_.holdout_every);
    while (state.holdout.size() > cap) {
      state.holdout.pop_front();
      ++stats_.window_evictions;
      evictions.inc();
    }
  } else {
    state.window.push_back(rec);
    while (state.window.size() > options_.window_capacity) {
      state.window.pop_front();
      ++stats_.window_evictions;
      evictions.inc();
    }
  }
}

void StreamPipeline::observe_error(KeyState& state, const BankKey& key,
                                   const bench::Record& rec,
                                   RowOutcome* out) {
  const std::shared_ptr<const CompiledBank> bank = registry_.lookup(key);
  if (!bank) return;  // nothing served yet — nothing to drift from

  pred_scratch_.resize(bank->num_models());
  bank->predict_all_into({rec.nodes, rec.ppn, rec.msize}, pred_scratch_);
  const std::vector<int>& uids = bank->uids();
  double predicted = 0.0;
  bool usable = false;
  for (std::size_t i = 0; i < uids.size(); ++i) {
    if (uids[i] != rec.uid) continue;
    usable = pred_scratch_[i].usable && pred_scratch_[i].time_us > 0.0;
    predicted = pred_scratch_[i].time_us;
    break;
  }
  if (!usable) return;  // no reliable error signal for this row

  const double rel = (rec.time_us - predicted) / predicted;
  const DriftSignal signal = state.detector.observe(rec.uid, rel);
  if (signal == DriftSignal::kNone) return;

  // First alarm since the last swap: the windowed rows straddle the old
  // and new regime, so training on them would smear the refit. Discard
  // the stale window and re-accumulate from post-drift rows only.
  static metrics::Counter& detected = metrics::counter("drift.detected");
  ++stats_.drift_detections;
  detected.inc();
  stats_.detection_rows.push_back(stats_.rows_seen);
  stats_.rows_discarded_on_drift +=
      state.window.size() + state.holdout.size();
  metrics::counter("stream.rows_discarded_on_drift")
      .inc(state.window.size() + state.holdout.size());
  state.window.clear();
  state.holdout.clear();
  state.pending_refit = true;
  out->drift = signal;
}

void StreamPipeline::maybe_refit(KeyState& state, const BankKey& key,
                                 RowOutcome* out) {
  const bool bootstrap = registry_.version(key) == 0;
  if (!bootstrap && !state.pending_refit) return;
  if (state.window.size() + state.holdout.size() < options_.min_refit_rows) {
    return;  // keep accumulating
  }
  if (state.accepted < state.backoff_until) {
    // A refit is owed but a recent failure put this key in backoff.
    static metrics::Counter& skips = metrics::counter("stream.backoff_skips");
    ++stats_.backoff_skips;
    skips.inc();
    return;
  }
  if (state.attempted_before &&
      state.accepted - state.last_attempt_at < options_.refit_cooldown) {
    return;  // base rate limit between attempts
  }

  MPICP_SPAN("stream.refit");
  static metrics::Counter& attempts =
      metrics::counter("stream.refits_attempted");
  ++stats_.refits_attempted;
  attempts.inc();
  state.attempted_before = true;
  state.last_attempt_at = state.accepted;
  out->refit_attempted = true;

  bench::Dataset ds("stream:" + to_string(key), options_.lib,
                    key.collective, key.machine);
  for (const bench::Record& r : state.window) ds.add(r);

  const BankRegistry::RefitOutcome outcome = registry_.refit_and_publish(
      key, ds, ds.node_counts(), options_.selector,
      [this, &state](const CompiledBank& candidate,
                     const std::shared_ptr<const CompiledBank>& incumbent) {
        if (state.holdout.empty()) return std::string();
        // Bootstrap: serving something beats serving nothing; the drift
        // loop replaces a weak first bank as soon as errors show it.
        if (!incumbent) return std::string();
        const double cand_err = holdout_error(state, candidate);
        const double inc_err = holdout_error(state, *incumbent);
        if (cand_err > inc_err * options_.accept_tolerance) {
          return "candidate holdout error " +
                 support::format_double(cand_err, 6) +
                 " worse than incumbent " +
                 support::format_double(inc_err, 6);
        }
        return std::string();
      });

  if (outcome.published) {
    static metrics::Counter& published =
        metrics::counter("stream.refits_published");
    ++stats_.refits_published;
    published.inc();
    state.pending_refit = false;
    state.detector.reset();  // fresh baseline against the new bank
    state.backoff = 0;
    state.backoff_until = 0;
    out->published = true;
    return;
  }

  // Faulted fit or validator rejection: the incumbent keeps serving and
  // the key backs off exponentially before the next attempt.
  static metrics::Counter& rejected =
      metrics::counter("drift.refit_rejected");
  rejected.inc();
  if (outcome.rejected) {
    ++stats_.refits_rejected;
  } else {
    ++stats_.refits_failed;
  }
  out->rejected = true;
  state.backoff =
      state.backoff == 0
          ? options_.backoff_initial
          : std::min<std::uint64_t>(
                static_cast<std::uint64_t>(
                    static_cast<double>(state.backoff) *
                    options_.backoff_multiplier),
                options_.backoff_max);
  state.backoff_until = state.accepted + state.backoff;
}

double StreamPipeline::holdout_error(const KeyState& state,
                                     const CompiledBank& bank) const {
  // Local buffer rather than pred_scratch_: this runs inside the
  // registry's validator callback, outside the pump's capability
  // context, and the holdout walk is off the per-row hot path.
  std::vector<Selector::Prediction> preds(bank.num_models());
  const std::vector<int>& uids = bank.uids();
  double sum = 0.0;
  std::size_t n = 0;
  for (const bench::Record& r : state.holdout) {
    bank.predict_all_into({r.nodes, r.ppn, r.msize}, preds);
    double err = kUnusablePenalty;
    for (std::size_t i = 0; i < uids.size(); ++i) {
      if (uids[i] != r.uid) continue;
      const Selector::Prediction& p = preds[i];
      if (p.usable && p.time_us > 0.0) {
        err = std::abs(p.time_us - r.time_us) / r.time_us;
      }
      break;
    }
    sum += err;
    ++n;
  }
  return n == 0 ? 0.0 : sum / static_cast<double>(n);
}

StreamPipeline::Stats StreamPipeline::stats() const {
  const support::MutexLock lock(mu_);
  return stats_;
}

std::size_t StreamPipeline::window_size(const BankKey& key) const {
  const support::MutexLock lock(mu_);
  const auto it = states_.find(key);
  return it == states_.end() ? 0 : it->second.window.size();
}

std::size_t StreamPipeline::holdout_size(const BankKey& key) const {
  const support::MutexLock lock(mu_);
  const auto it = states_.find(key);
  return it == states_.end() ? 0 : it->second.holdout.size();
}

}  // namespace mpicp::tune
