# Empty compiler generated dependencies file for bench_fig8_bcast_supermuc.
# This may be replaced when dependencies are built.
