# Empty dependencies file for bench_fig7_allreduce_jupiter.
# This may be replaced when dependencies are built.
