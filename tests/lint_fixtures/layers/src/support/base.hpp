// Bottom-layer header the other layer fixtures include.
#pragma once

namespace mpicp::support {

struct BaseThing {
  int value = 0;
};

}  // namespace mpicp::support
