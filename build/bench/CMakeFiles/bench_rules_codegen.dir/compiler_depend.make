# Empty compiler generated dependencies file for bench_rules_codegen.
# This may be replaced when dependencies are built.
