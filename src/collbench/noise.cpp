#include "collbench/noise.hpp"

#include <cmath>

#include "support/error.hpp"

namespace mpicp::bench {

namespace {

/// Standard-normal-ish value derived deterministically from a hash
/// (sum of 4 mixed uniforms, Irwin-Hall approximation).
double hashed_normal(std::uint64_t h) {
  support::SplitMix64 sm(h);
  double acc = 0.0;
  for (int i = 0; i < 4; ++i) {
    acc += static_cast<double>(sm.next() >> 11) * 0x1.0p-53;
  }
  return (acc - 2.0) * std::sqrt(3.0);  // variance 4/12 -> scaled to 1
}

}  // namespace

double NoiseModel::systematic_factor(std::uint64_t coll_key, int uid,
                                     int nodes, int ppn,
                                     std::uint64_t msize) const {
  // Per-(uid, nodes, ppn) process-geometry quirk plus a weaker
  // per-(uid, msize) protocol quirk.
  const double geo = hashed_normal(support::hash_combine(
      {seed_, coll_key, static_cast<std::uint64_t>(uid),
       static_cast<std::uint64_t>(nodes), static_cast<std::uint64_t>(ppn),
       0xa11ce}));
  const double msz = hashed_normal(support::hash_combine(
      {seed_, coll_key, static_cast<std::uint64_t>(uid), msize, 0xb0b}));
  return std::exp(params_.sys_sigma * geo + 0.5 * params_.sys_sigma * msz);
}

double NoiseModel::true_time_us(double des_time_us, std::uint64_t coll_key,
                                int uid, int nodes, int ppn,
                                std::uint64_t msize) const {
  MPICP_REQUIRE(des_time_us >= 0.0, "negative simulated time");
  return des_time_us *
         systematic_factor(coll_key, uid, nodes, ppn, msize);
}

double NoiseModel::observe_us(double true_time_us,
                              support::Xoshiro256& rng) const {
  const double sigma =
      params_.sigma_base +
      params_.sigma_small /
          (1.0 + true_time_us / params_.small_scale_us);
  double t = rng.lognormal_median(std::max(true_time_us, 1e-3), sigma);
  if (rng.uniform() < params_.straggler_prob) {
    t *= 1.0 + (params_.straggler_mult - 1.0) * rng.uniform();
  }
  return t;
}

}  // namespace mpicp::bench
