// Measurement datasets (the Table II artifacts).
//
// A Dataset holds the raw benchmark observations of one (collective, MPI
// library, machine) triple over the full grid of algorithm configuration
// uids × nodes × ppn × message sizes, plus aggregation (median per
// configuration) and the exhaustive-search "best" lookup that the
// paper's evaluation uses as its reference point.
#pragma once

#include <cstdint>
#include <filesystem>
#include <map>
#include <memory>
#include <ostream>
#include <string>
#include <unordered_map>
#include <vector>

#include "simmpi/coll/registry.hpp"
#include "simmpi/coll/types.hpp"
#include "support/thread_safety.hpp"

namespace mpicp::bench {

/// One benchmark observation.
struct Record {
  int uid = 0;
  int nodes = 0;
  int ppn = 0;
  std::uint64_t msize = 0;
  double time_us = 0.0;
};

/// A communication problem instance (the paper's I = (F, m, n, N); the
/// collective F is carried by the owning Dataset).
struct Instance {
  int nodes = 0;
  int ppn = 0;
  std::uint64_t msize = 0;

  bool operator==(const Instance&) const = default;
};

/// Validation knobs of the tolerant ingest path.
struct IngestOptions {
  /// Timings above this are quarantined as implausible (1e9 us is ~17
  /// minutes for a single collective — far past anything the Table II
  /// grids produce; legitimate slow outliers stay well below it).
  double max_time_us = 1e9;
};

/// Structured account of one tolerant CSV ingest: every input row is
/// either ingested or quarantined under a reason, and the counts add
/// up (rows_seen == rows_ingested + rows_quarantined).
struct IngestReport {
  std::size_t rows_seen = 0;
  std::size_t rows_ingested = 0;
  std::size_t rows_quarantined = 0;
  std::map<std::string, std::size_t> reasons;  ///< reason -> count

  struct Sample {
    std::size_t lineno = 0;
    std::string reason;
  };
  /// The first few quarantined rows, for log output.
  std::vector<Sample> samples;

  bool clean() const { return rows_quarantined == 0; }
};

/// Semantic validation of one observation against the tolerant-ingest
/// rules. Returns the quarantine reason — exactly the strings
/// Dataset::load_csv_tolerant accounts under ("non-finite time",
/// "non-positive time", "implausible time", "bad configuration key") —
/// or "" when the record is ingestible. Streaming consumers reuse this
/// so their quarantine accounting matches file ingest byte for byte.
[[nodiscard]] std::string validate_record(const Record& rec,
                                          const IngestOptions& options = {});

class Dataset {
 public:
  Dataset(std::string name, sim::MpiLib lib, sim::Collective coll,
          std::string machine);

  const std::string& name() const { return name_; }
  sim::MpiLib lib() const { return lib_; }
  sim::Collective collective() const { return coll_; }
  const std::string& machine() const { return machine_; }

  void add(const Record& rec);

  /// Fault-injection entry: append a record without validation, so tests
  /// can plant NaN/negative/outlier timings and exercise the downstream
  /// screening (Selector::fit drops such rows per uid). Never use for
  /// real measurements — add() is the validated path.
  void add_unchecked(const Record& rec);

  std::size_t num_records() const { return records_.size(); }
  const std::vector<Record>& records() const { return records_; }

  /// All uids / node counts / ppns / message sizes present (sorted).
  std::vector<int> uids() const;
  std::vector<int> node_counts() const;
  std::vector<int> ppns() const;
  std::vector<std::uint64_t> msizes() const;

  bool has(int uid, const Instance& inst) const;

  /// Median measured time of one configuration; throws if absent.
  double time_us(int uid, const Instance& inst) const;

  /// Empirically best configuration for an instance (argmin of median
  /// time over all uids measured there).
  struct Best {
    int uid = 0;
    double time_us = 0.0;
  };
  Best best(const Instance& inst) const;

  /// All instances (n, ppn, m) present in the dataset.
  std::vector<Instance> instances() const;

  // ---- persistence ----------------------------------------------------
  void save_csv(const std::filesystem::path& path) const;
  [[nodiscard]] static Dataset load_csv(const std::filesystem::path& path,
                          std::string name, sim::MpiLib lib,
                          sim::Collective coll, std::string machine);

  /// Tolerant ingest: structurally or semantically bad rows (wrong cell
  /// count, unparseable fields, non-finite / non-positive / implausible
  /// timings) are quarantined into `report` instead of aborting the
  /// load. File-level failures (missing file, bad header) still throw.
  /// On a clean file this is byte-for-byte equivalent to load_csv.
  [[nodiscard]] static Dataset load_csv_tolerant(
      const std::filesystem::path& path,
                                   std::string name, sim::MpiLib lib,
                                   sim::Collective coll,
                                   std::string machine,
                                   IngestReport* report = nullptr,
                                   const IngestOptions& options = {});

 private:
  static std::uint64_t key(int uid, const Instance& inst);

  std::string name_;
  sim::MpiLib lib_;
  sim::Collective coll_;
  std::string machine_;
  std::vector<Record> records_;
  std::unordered_map<std::uint64_t, std::vector<double>> samples_;
  // Lazily cached medians — the only mutable state behind the const
  // query API, so it carries its own lock: time_us()/best() are called
  // concurrently from the parallel evaluator and selector paths.
  // Heap-allocated so Dataset stays movable; copies share the cache,
  // which is harmless (identical samples yield identical medians, and
  // every add clears it).
  struct MedianCache {
    support::Mutex mu;
    std::unordered_map<std::uint64_t, double> values MPICP_GUARDED_BY(mu);
  };
  std::shared_ptr<MedianCache> median_cache_ =
      std::make_shared<MedianCache>();
};

/// Render an ingest health report as an aligned table (support/table).
void print_ingest_report(std::ostream& os, const IngestReport& report);

}  // namespace mpicp::bench
