# Empty dependencies file for bench_prediction_latency.
# This may be replaced when dependencies are built.
