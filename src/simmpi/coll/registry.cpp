#include "simmpi/coll/registry.hpp"

#include <map>

#include "simmpi/coll/allreduce.hpp"
#include "simmpi/coll/alltoall.hpp"
#include "simmpi/coll/bcast.hpp"
#include "support/error.hpp"
#include "support/str.hpp"
#include "support/trace.hpp"

namespace mpicp::sim {

namespace {

constexpr std::size_t kKi = 1024;

/// Segment-size menus (bytes). 0 means unsegmented.
const std::vector<std::size_t> kSegMenu = {1 * kKi, 4 * kKi, 16 * kKi,
                                           64 * kKi, 128 * kKi};
const std::vector<std::size_t> kSegMenuWithZero = {
    0, 1 * kKi, 4 * kKi, 16 * kKi, 64 * kKi, 128 * kKi};
const std::vector<int> kChainMenu = {2, 4, 8, 16};

void add(std::vector<AlgoConfig>& out, int alg_id, std::string name,
         std::size_t seg = 0, int param = 0) {
  AlgoConfig cfg;
  cfg.uid = static_cast<int>(out.size()) + 1;
  cfg.alg_id = alg_id;
  cfg.name = std::move(name);
  cfg.seg_bytes = seg;
  cfg.param = param;
  out.push_back(std::move(cfg));
}

std::vector<AlgoConfig> openmpi_bcast_configs() {
  std::vector<AlgoConfig> out;
  add(out, 1, "linear");
  for (const std::size_t seg : kSegMenu) {
    for (const int chains : kChainMenu) add(out, 2, "chain", seg, chains);
  }
  for (const std::size_t seg : kSegMenuWithZero) {
    add(out, 3, "pipeline", seg);
  }
  for (const std::size_t seg : kSegMenuWithZero) {
    add(out, 4, "split_binary", seg);
  }
  for (const std::size_t seg : kSegMenuWithZero) add(out, 5, "binary", seg);
  for (const std::size_t seg : kSegMenuWithZero) {
    add(out, 6, "binomial", seg);
  }
  for (const std::size_t seg : kSegMenuWithZero) {
    add(out, 7, "knomial", seg, 4);
  }
  add(out, 8, "scatter_allgather");
  add(out, 9, "scatter_ring_allgather");
  return out;
}

std::vector<AlgoConfig> openmpi_allreduce_configs() {
  std::vector<AlgoConfig> out;
  add(out, 1, "basic_linear");
  add(out, 2, "nonoverlapping");
  add(out, 3, "recursive_doubling");
  add(out, 4, "ring");
  for (const std::size_t seg : kSegMenu) add(out, 5, "segmented_ring", seg);
  add(out, 6, "rabenseifner");
  for (const std::size_t seg :
       {std::size_t{4 * kKi}, std::size_t{16 * kKi}, std::size_t{64 * kKi}}) {
    add(out, 7, "binary_tree", seg);
  }
  return out;
}

std::vector<AlgoConfig> alltoall_configs_openmpi() {
  std::vector<AlgoConfig> out;
  add(out, 1, "linear");
  add(out, 2, "pairwise");
  add(out, 3, "bruck", 0, 2);
  add(out, 4, "linear_sync", 0, 10);
  add(out, 5, "bruck", 0, 4);
  return out;
}

std::vector<AlgoConfig> intel_bcast_configs() {
  std::vector<AlgoConfig> out;
  add(out, 1, "binomial");
  add(out, 2, "scatter_recdbl_allgather");
  add(out, 3, "scatter_ring_allgather");
  add(out, 4, "chain", 16 * kKi, 4);
  add(out, 5, "pipeline", 64 * kKi);
  add(out, 6, "knomial", 16 * kKi, 4);
  add(out, 7, "knomial", 0, 8);
  add(out, 8, "topo_binomial");
  add(out, 9, "topo_pipeline", 64 * kKi);
  add(out, 10, "topo_scatter_allgather");
  add(out, 11, "topo_flat");
  add(out, 12, "linear");
  return out;
}

std::vector<AlgoConfig> intel_allreduce_configs() {
  std::vector<AlgoConfig> out;
  add(out, 1, "recursive_doubling");
  add(out, 2, "rabenseifner");
  add(out, 3, "ring");
  add(out, 4, "segmented_ring", 16 * kKi);
  add(out, 5, "segmented_ring", 64 * kKi);
  add(out, 6, "reduce_bcast");
  add(out, 7, "basic_linear");
  add(out, 8, "rs_recdbl_ag");
  add(out, 9, "knomial_tree", 16 * kKi, 4);
  add(out, 10, "topo_recdbl");
  add(out, 11, "topo_rabenseifner");
  add(out, 12, "topo_ring");
  add(out, 13, "topo_segmented_ring", 64 * kKi);
  add(out, 14, "topo_reduce_bcast");
  add(out, 15, "topo_flat_recdbl");
  add(out, 16, "binary_tree", 32 * kKi);
  return out;
}

std::vector<AlgoConfig> intel_alltoall_configs() {
  std::vector<AlgoConfig> out;
  add(out, 1, "bruck", 0, 2);
  add(out, 2, "linear");
  add(out, 3, "pairwise");
  add(out, 4, "linear_sync", 0, 16);
  // Substitute for Intel's "Plum's" algorithm: higher-radix Bruck, the
  // closest published high-radix staged exchange (see DESIGN.md §2).
  add(out, 5, "bruck", 0, 4);
  return out;
}

using Key = std::pair<MpiLib, Collective>;

const std::map<Key, std::vector<AlgoConfig>>& config_tables() {
  static const std::map<Key, std::vector<AlgoConfig>> tables = [] {
    std::map<Key, std::vector<AlgoConfig>> t;
    t[{MpiLib::kOpenMPI, Collective::kBcast}] = openmpi_bcast_configs();
    t[{MpiLib::kOpenMPI, Collective::kAllreduce}] =
        openmpi_allreduce_configs();
    t[{MpiLib::kOpenMPI, Collective::kAlltoall}] =
        alltoall_configs_openmpi();
    t[{MpiLib::kIntelMPI, Collective::kBcast}] = intel_bcast_configs();
    t[{MpiLib::kIntelMPI, Collective::kAllreduce}] =
        intel_allreduce_configs();
    t[{MpiLib::kIntelMPI, Collective::kAlltoall}] = intel_alltoall_configs();
    return t;
  }();
  return tables;
}

BuiltCollective build_openmpi_bcast(const AlgoConfig& cfg, const Comm& comm,
                                    std::size_t bytes, int root) {
  switch (cfg.alg_id) {
    case 1: return bcast_linear(comm, bytes, root);
    case 2: return bcast_chain(comm, bytes, cfg.seg_bytes, cfg.param, root);
    case 3: return bcast_pipeline(comm, bytes, cfg.seg_bytes, root);
    case 4: return bcast_split_binary(comm, bytes, cfg.seg_bytes, root);
    case 5: return bcast_binary(comm, bytes, cfg.seg_bytes, root);
    case 6: return bcast_binomial(comm, bytes, cfg.seg_bytes, root);
    case 7:
      return bcast_knomial(comm, bytes, cfg.seg_bytes, cfg.param, root);
    case 8: return bcast_scatter_allgather(comm, bytes, root);
    case 9: return bcast_scatter_ring_allgather(comm, bytes, root);
    default: break;
  }
  MPICP_RAISE_ARG("unknown Open MPI bcast algorithm id " +
                        std::to_string(cfg.alg_id));
}

BuiltCollective build_openmpi_allreduce(const AlgoConfig& cfg,
                                        const Comm& comm,
                                        std::size_t bytes) {
  switch (cfg.alg_id) {
    case 1: return allreduce_linear(comm, bytes);
    case 2: return allreduce_nonoverlapping(comm, bytes);
    case 3: return allreduce_recursive_doubling(comm, bytes);
    case 4: return allreduce_ring(comm, bytes);
    case 5: return allreduce_segmented_ring(comm, bytes, cfg.seg_bytes);
    case 6: return allreduce_rabenseifner(comm, bytes);
    case 7:
      return allreduce_tree(comm, bytes, cfg.seg_bytes,
                            AllreduceTreeKind::kBinary);
    default: break;
  }
  MPICP_RAISE_ARG("unknown Open MPI allreduce algorithm id " +
                        std::to_string(cfg.alg_id));
}

BuiltCollective build_alltoall(const AlgoConfig& cfg, const Comm& comm,
                               std::size_t bytes, bool tracking) {
  if (cfg.name == "linear") return alltoall_linear(comm, bytes);
  if (cfg.name == "pairwise") return alltoall_pairwise(comm, bytes);
  if (cfg.name == "bruck") {
    return alltoall_bruck(comm, bytes, cfg.param, tracking);
  }
  if (cfg.name == "linear_sync") {
    return alltoall_linear_sync(comm, bytes, cfg.param);
  }
  MPICP_RAISE_ARG("unknown alltoall algorithm '" + cfg.name + "'");
}

BuiltCollective build_intel_bcast(const AlgoConfig& cfg, const Comm& comm,
                                  std::size_t bytes, int root) {
  switch (cfg.alg_id) {
    case 1: return bcast_binomial(comm, bytes, 0, root);
    case 2: return bcast_scatter_allgather(comm, bytes, root);
    case 3: return bcast_scatter_ring_allgather(comm, bytes, root);
    case 4: return bcast_chain(comm, bytes, cfg.seg_bytes, cfg.param, root);
    case 5: return bcast_pipeline(comm, bytes, cfg.seg_bytes, root);
    case 6:
    case 7:
      return bcast_knomial(comm, bytes, cfg.seg_bytes,
                           cfg.alg_id == 6 ? cfg.param : 8, root);
    case 8:
      return bcast_hierarchical(comm, bytes, 0, HierBcastInter::kBinomial,
                                HierBcastIntra::kBinomial, root);
    case 9:
      return bcast_hierarchical(comm, bytes, cfg.seg_bytes,
                                HierBcastInter::kPipeline,
                                HierBcastIntra::kBinomial, root);
    case 10:
      return bcast_hierarchical(comm, bytes, 0,
                                HierBcastInter::kScatterAllgather,
                                HierBcastIntra::kBinomial, root);
    case 11:
      return bcast_hierarchical(comm, bytes, 0, HierBcastInter::kBinomial,
                                HierBcastIntra::kFlat, root);
    case 12: return bcast_linear(comm, bytes, root);
    default: break;
  }
  MPICP_RAISE_ARG("unknown Intel MPI bcast algorithm id " +
                        std::to_string(cfg.alg_id));
}

BuiltCollective build_intel_allreduce(const AlgoConfig& cfg,
                                      const Comm& comm, std::size_t bytes) {
  switch (cfg.alg_id) {
    case 1: return allreduce_recursive_doubling(comm, bytes);
    case 2: return allreduce_rabenseifner(comm, bytes);
    case 3: return allreduce_ring(comm, bytes);
    case 4:
    case 5: return allreduce_segmented_ring(comm, bytes, cfg.seg_bytes);
    case 6:
      return allreduce_tree(comm, bytes, 0, AllreduceTreeKind::kBinomial);
    case 7: return allreduce_linear(comm, bytes);
    case 8: return allreduce_reduce_scatter_allgather(comm, bytes);
    case 9:
      return allreduce_tree(comm, bytes, cfg.seg_bytes,
                            AllreduceTreeKind::kKnomial, cfg.param);
    case 10:
      return allreduce_hierarchical(comm, bytes, 0,
                                    HierAllreduceInter::kRecursiveDoubling);
    case 11:
      return allreduce_hierarchical(comm, bytes, 0,
                                    HierAllreduceInter::kRabenseifner);
    case 12:
      return allreduce_hierarchical(comm, bytes, 0,
                                    HierAllreduceInter::kRing);
    case 13:
      return allreduce_hierarchical(comm, bytes, cfg.seg_bytes,
                                    HierAllreduceInter::kSegmentedRing);
    case 14:
      return allreduce_hierarchical(comm, bytes, 0,
                                    HierAllreduceInter::kReduceBcast);
    case 15:
      return allreduce_hierarchical(comm, bytes, 0,
                                    HierAllreduceInter::kRecursiveDoubling,
                                    /*flat_intra=*/true);
    case 16:
      return allreduce_tree(comm, bytes, cfg.seg_bytes,
                            AllreduceTreeKind::kBinary);
    default: break;
  }
  MPICP_RAISE_ARG("unknown Intel MPI allreduce algorithm id " +
                        std::to_string(cfg.alg_id));
}

}  // namespace

std::string to_string(MpiLib lib) {
  return lib == MpiLib::kOpenMPI ? "OpenMPI" : "IntelMPI";
}

MpiLib mpilib_from_string(const std::string& name) {
  if (name == "OpenMPI") return MpiLib::kOpenMPI;
  if (name == "IntelMPI") return MpiLib::kIntelMPI;
  MPICP_RAISE_ARG("unknown MPI library '" + name + "'");
}

std::string AlgoConfig::label() const {
  std::string out = name;
  const bool has_seg = seg_bytes != 0;
  const bool has_param = param != 0;
  if (has_seg || has_param) {
    out += '(';
    if (has_seg) out += "seg=" + support::format_bytes(seg_bytes);
    if (has_seg && has_param) out += ',';
    if (has_param) out += "par=" + std::to_string(param);
    out += ')';
  }
  return out;
}

const std::vector<AlgoConfig>& algorithm_configs(MpiLib lib,
                                                 Collective coll) {
  const auto& tables = config_tables();
  const auto it = tables.find({lib, coll});
  if (it == tables.end()) {
    MPICP_RAISE_ARG("no algorithm table for " + to_string(lib) + "/" +
                          to_string(coll));
  }
  return it->second;
}

const AlgoConfig& config_by_uid(MpiLib lib, Collective coll, int uid) {
  const auto& configs = algorithm_configs(lib, coll);
  if (uid < 1 || uid > static_cast<int>(configs.size())) {
    MPICP_RAISE_ARG("uid " + std::to_string(uid) +
                          " out of range for " + to_string(lib) + "/" +
                          to_string(coll));
  }
  return configs[static_cast<std::size_t>(uid - 1)];
}

int num_library_algorithms(MpiLib lib, Collective coll) {
  int max_id = 0;
  for (const auto& cfg : algorithm_configs(lib, coll)) {
    max_id = std::max(max_id, cfg.alg_id);
  }
  return max_id;
}

BuiltCollective build_algorithm(MpiLib lib, Collective coll,
                                const AlgoConfig& cfg, const Comm& comm,
                                std::size_t bytes, int root, bool tracking) {
  MPICP_SPAN("sim.build_algorithm");
  switch (coll) {
    case Collective::kBcast:
      return lib == MpiLib::kOpenMPI
                 ? build_openmpi_bcast(cfg, comm, bytes, root)
                 : build_intel_bcast(cfg, comm, bytes, root);
    case Collective::kAllreduce:
      return lib == MpiLib::kOpenMPI
                 ? build_openmpi_allreduce(cfg, comm, bytes)
                 : build_intel_allreduce(cfg, comm, bytes);
    case Collective::kAlltoall:
      return build_alltoall(cfg, comm, bytes, tracking);
    default:
      break;
  }
  MPICP_RAISE_ARG("no registry builder for collective " +
                        to_string(coll));
}

}  // namespace mpicp::sim
