// K-nearest-neighbor regression (the paper's KNN learner).
//
// K = 5, z-scaled inputs, Euclidean distance, mean of the neighbors'
// targets — exactly the caret defaults the paper relies on. Queries use
// a kd-tree over the scaled training points with brute force as the
// (test-verified) reference path.
#pragma once

#include <vector>

#include "ml/learner.hpp"

namespace mpicp::ml {

/// Per-feature standardization to zero mean / unit variance.
class StandardScaler {
 public:
  void fit(const Matrix& x);
  std::vector<double> transform(std::span<const double> row) const;
  bool fitted() const { return !mean_.empty(); }
  void save(std::ostream& os) const;
  void load(std::istream& is);

  const std::vector<double>& mean() const { return mean_; }
  const std::vector<double>& inv_std() const { return inv_std_; }

 private:
  std::vector<double> mean_;
  std::vector<double> inv_std_;
};

struct KnnParams {
  int k = 5;
  bool scale_inputs = true;
  bool use_kdtree = true;
};

class KnnRegressor final : public Regressor {
 public:
  struct KdNode {
    int axis = -1;       // -1: leaf
    double split = 0.0;
    int left = -1;
    int right = -1;
    int begin = 0;       // leaf: range into order_
    int end = 0;
  };

  explicit KnnRegressor(KnnParams params = {});

  void fit(const Matrix& x, std::span<const double> y) override;
  double predict_one(std::span<const double> x) const override;
  std::string name() const override { return "knn"; }
  void save(std::ostream& os) const override;
  void load(std::istream& is) override;

  // Introspection for the compiled bank's lowering pass.
  const KnnParams& params() const { return params_; }
  const StandardScaler& scaler() const { return scaler_; }
  const Matrix& points() const { return points_; }
  const std::vector<double>& targets() const { return targets_; }
  const std::vector<int>& order() const { return order_; }
  const std::vector<KdNode>& kd() const { return kd_; }

 private:
  int build_kd(int begin, int end, int depth);
  void search_kd(int node, std::span<const double> q,
                 std::vector<std::pair<double, int>>& heap) const;
  double query(std::span<const double> scaled) const;

  KnnParams params_;
  StandardScaler scaler_;
  Matrix points_;  // scaled training points
  std::vector<double> targets_;
  std::vector<int> order_;  // kd-tree leaf permutation
  std::vector<KdNode> kd_;
};

}  // namespace mpicp::ml
